package store

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"

	"xmlconflict/internal/faultinject"
)

// Chunked, resumable state transfer: the full-state catch-up path
// (ExportState/ImportState) shipped the whole store as one unbounded
// body, so a crash or partition mid-transfer restarted from byte zero
// and a large store could never finish across a flaky link. Here the
// exporter serializes the State once per session and serves CRC-framed
// byte-range chunks; the importer appends each verified chunk to a
// part file and durably records its progress, so a reopened (or
// re-connected) importer resumes at the recorded offset instead of
// restarting. Installation still goes through ImportState at the end —
// parse- and digest-verified, snapshot-published atomically — so a
// half-transferred state is never visible to recovery: until the final
// chunk verifies against the whole-body CRC, the only trace of the
// transfer is the part file recovery ignores.

const (
	// xferPartName accumulates verified chunk bytes in the store dir.
	xferPartName = "repl-xfer.part"
	// xferProgressName is the durable resume record next to it.
	xferProgressName = "repl-xfer.json"
	// xferMaxChunk caps a single chunk regardless of what the caller
	// asks for.
	xferMaxChunk = 8 << 20
	// xferKeepSessions bounds the exporter's session cache. Eviction is
	// LRU on last access (not creation order), and concurrent receivers
	// pulling the same LSN share one session, so several dirty backups
	// resyncing at once do not evict each other into restart loops.
	xferKeepSessions = 8
)

// XferChunk is one CRC-framed slice of a serialized State in transit.
// Offset/Total are byte positions in the session's stable body; CRC
// covers Data, TotalCRC the whole body (verified before install).
type XferChunk struct {
	Session  string `json:"session"`
	LSN      uint64 `json:"lsn"`
	Offset   int64  `json:"offset"`
	Total    int64  `json:"total"`
	TotalCRC uint32 `json:"total_crc"`
	CRC      uint32 `json:"crc"`
	Data     []byte `json:"data"`
	Last     bool   `json:"last,omitempty"`
}

// xferExport is one cached exporter session: a byte-stable snapshot of
// the store's state, so every chunk of a session describes the same
// LSN no matter how far the store advances meanwhile.
type xferExport struct {
	session string
	lsn     uint64
	body    []byte
	crc     uint32
}

// xferProgress is the importer's durable resume record (same strict
// load discipline as every other manifest: corrupt means start over,
// it never guesses).
type xferProgress struct {
	Version  int    `json:"version"`
	Session  string `json:"session"`
	LSN      uint64 `json:"lsn"`
	Total    int64  `json:"total"`
	TotalCRC uint32 `json:"total_crc"`
	Offset   int64  `json:"offset"`
}

// ExportChunk serves one chunk of a state-transfer session. An empty
// or unknown session starts a fresh one (the receiver detects the new
// session id and restarts its part file); a known session serves the
// requested offset from the cached, byte-stable body. max <= 0 uses
// the configured default chunk size.
func (s *Store) ExportChunk(session string, offset int64, max int) (XferChunk, error) {
	if max <= 0 {
		max = s.opts.XferChunkBytes
	}
	if max > xferMaxChunk {
		max = xferMaxChunk
	}
	s.xferMu.Lock()
	defer s.xferMu.Unlock()
	idx := -1
	for i, e := range s.xferOut {
		if session != "" && e.session == session {
			idx = i
			break
		}
	}
	if idx < 0 {
		// No exact match: before opening a new session, reuse any cached
		// one already at the store's current LSN — its byte-stable body is
		// the state the caller would get anyway, so concurrent receivers
		// (several dirty backups resyncing after a failover) share one
		// session instead of evicting each other out of the cache.
		cur := s.LSN()
		for i, e := range s.xferOut {
			if e.lsn == cur {
				idx = i
				break
			}
		}
	}
	var ex *xferExport
	if idx >= 0 {
		ex = s.xferOut[idx]
		// Eviction below is LRU on last access: move the hit to the tail
		// so an active transfer is never pushed out by sessions opened
		// after it.
		s.xferOut = append(append(s.xferOut[:idx], s.xferOut[idx+1:]...), ex)
	} else {
		st, err := s.ExportState()
		if err != nil {
			return XferChunk{}, err
		}
		body, err := json.Marshal(st)
		if err != nil {
			return XferChunk{}, fmt.Errorf("store: xfer encode state: %w", err)
		}
		ex = &xferExport{
			session: fmt.Sprintf("x%08x%08x", rand.Uint32(), rand.Uint32()),
			lsn:     st.LSN,
			body:    body,
			crc:     crc32.Checksum(body, castagnoli),
		}
		s.xferOut = append(s.xferOut, ex)
		if len(s.xferOut) > xferKeepSessions {
			s.xferOut = append([]*xferExport(nil), s.xferOut[len(s.xferOut)-xferKeepSessions:]...)
		}
		offset = 0 // a fresh session always starts at byte zero
		s.m.Add("store.xfer.sessions", 1)
	}
	total := int64(len(ex.body))
	if offset < 0 || offset > total {
		offset = 0
	}
	end := offset + int64(max)
	if end > total {
		end = total
	}
	data := ex.body[offset:end]
	s.m.Add("store.xfer.chunks_served", 1)
	return XferChunk{
		Session:  ex.session,
		LSN:      ex.lsn,
		Offset:   offset,
		Total:    total,
		TotalCRC: ex.crc,
		CRC:      crc32.Checksum(data, castagnoli),
		Data:     data,
		Last:     end == total,
	}, nil
}

// XferProgress reports the importer's resumable position: the session
// and offset of an interrupted inbound transfer, loaded from the
// durable record if this store was reopened mid-transfer. ok is false
// when no transfer is in progress.
func (s *Store) XferProgress() (session string, offset int64, ok bool) {
	s.xferMu.Lock()
	defer s.xferMu.Unlock()
	p, err := s.loadXferProgressLocked()
	if err != nil || p == nil {
		return "", 0, false
	}
	return p.Session, p.Offset, true
}

// ImportChunk folds one received chunk into the in-progress transfer
// and returns the next offset the sender should ship. A session the
// importer has never seen restarts the part file (only from offset
// zero — anything else answers with the offset it actually needs); a
// chunk at the wrong offset is not an error, the returned offset just
// rewinds or fast-forwards the sender. When the final byte lands the
// whole body is CRC-verified, decoded, and installed through
// ImportState — the atomic temp+rename publish — and the progress
// record is retired. complete is true only after that install.
func (s *Store) ImportChunk(ctx context.Context, c XferChunk) (next int64, complete bool, err error) {
	if err := faultinject.Fire("repl.xfer.chunk"); err != nil {
		return 0, false, err
	}
	if crc32.Checksum(c.Data, castagnoli) != c.CRC {
		return 0, false, fmt.Errorf("store: xfer chunk at %d: crc mismatch", c.Offset)
	}
	if c.Total < 0 || c.Offset < 0 || c.Offset+int64(len(c.Data)) > c.Total {
		return 0, false, fmt.Errorf("store: xfer chunk at %d/%d with %d bytes: out of bounds", c.Offset, c.Total, len(c.Data))
	}

	s.xferMu.Lock()
	p, err := s.loadXferProgressLocked()
	if err != nil {
		// A corrupt progress record never resumes a guessed transfer:
		// drop it and restart the session from zero.
		s.clearXferLocked()
		p = nil
	}
	if p == nil || p.Session != c.Session {
		if c.Offset != 0 {
			s.xferMu.Unlock()
			return 0, false, nil // unknown session: ship me byte zero first
		}
		if err := os.WriteFile(filepath.Join(s.dir, xferPartName), nil, 0o644); err != nil {
			s.xferMu.Unlock()
			return 0, false, fmt.Errorf("store: xfer part reset: %w", err)
		}
		p = &xferProgress{Version: 1, Session: c.Session, LSN: c.LSN, Total: c.Total, TotalCRC: c.TotalCRC}
	}
	if c.LSN != p.LSN || c.Total != p.Total || c.TotalCRC != p.TotalCRC {
		// The sender's session mutated under us; restart cleanly next call.
		s.clearXferLocked()
		s.xferMu.Unlock()
		return 0, false, fmt.Errorf("store: xfer session %s changed shape mid-transfer", c.Session)
	}
	if c.Offset != p.Offset {
		s.xferMu.Unlock()
		return p.Offset, false, nil // rewind (or fast-forward) the sender
	}

	if len(c.Data) > 0 {
		if err := s.appendXferPartLocked(p, c.Data); err != nil {
			s.xferMu.Unlock()
			return 0, false, err
		}
		p.Offset += int64(len(c.Data))
		if err := s.saveXferProgressLocked(*p); err != nil {
			s.xferMu.Unlock()
			return 0, false, err
		}
		s.xferIn = p
		s.m.Add("store.xfer.chunks_applied", 1)
	}
	if p.Offset < p.Total {
		s.xferMu.Unlock()
		return p.Offset, false, nil
	}

	// Final chunk: verify the whole body, then install atomically.
	body, err := os.ReadFile(filepath.Join(s.dir, xferPartName))
	if err != nil {
		s.xferMu.Unlock()
		return 0, false, fmt.Errorf("store: xfer read part: %w", err)
	}
	if int64(len(body)) != p.Total || crc32.Checksum(body, castagnoli) != p.TotalCRC {
		s.clearXferLocked()
		s.xferMu.Unlock()
		return 0, false, fmt.Errorf("store: xfer body failed whole-transfer verification (%d bytes)", len(body))
	}
	var st State
	if err := json.Unmarshal(body, &st); err != nil {
		s.clearXferLocked()
		s.xferMu.Unlock()
		return 0, false, fmt.Errorf("store: xfer decode state: %w", err)
	}
	s.xferMu.Unlock()
	if err := s.ImportState(ctx, st); err != nil {
		return 0, false, err
	}
	s.xferMu.Lock()
	s.clearXferLocked()
	s.xferMu.Unlock()
	s.m.Add("store.xfer.installs", 1)
	return p.Total, true, nil
}

// appendXferPartLocked appends verified chunk bytes durably. The part
// file may be longer than the recorded offset after a crash between
// the append and the progress publish; truncating to the recorded
// offset first keeps the two in lockstep.
func (s *Store) appendXferPartLocked(p *xferProgress, data []byte) error {
	path := filepath.Join(s.dir, xferPartName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: xfer open part: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(p.Offset); err != nil {
		return fmt.Errorf("store: xfer truncate part: %w", err)
	}
	if _, err := f.WriteAt(data, p.Offset); err != nil {
		return fmt.Errorf("store: xfer append part: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: xfer sync part: %w", err)
	}
	return nil
}

// loadXferProgressLocked reads the durable resume record, preferring
// the in-memory copy. nil with nil error means no transfer is in
// progress.
func (s *Store) loadXferProgressLocked() (*xferProgress, error) {
	if s.xferIn != nil {
		return s.xferIn, nil
	}
	b, err := os.ReadFile(filepath.Join(s.dir, xferProgressName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: xfer read progress: %w", err)
	}
	var p xferProgress
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("store: xfer progress corrupt: %w", err)
	}
	if p.Version != 1 || p.Session == "" || p.Offset < 0 || p.Offset > p.Total {
		return nil, fmt.Errorf("store: xfer progress structurally invalid")
	}
	s.xferIn = &p
	return &p, nil
}

// saveXferProgressLocked durably publishes the resume record
// (temp + fsync + rename + dir fsync, like every other manifest).
func (s *Store) saveXferProgressLocked(p xferProgress) error {
	b, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("store: xfer encode progress: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "repl-xfer-*.tmp")
	if err != nil {
		return fmt.Errorf("store: xfer progress temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(b, '\n')); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("store: xfer write progress: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: xfer close progress: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, xferProgressName)); err != nil {
		return fmt.Errorf("store: xfer publish progress: %w", err)
	}
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("store: xfer open dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: xfer fsync dir: %w", err)
	}
	return nil
}

// clearXferLocked retires the in-progress transfer's artifacts
// (best-effort: a leftover part file is inert, recovery ignores it).
func (s *Store) clearXferLocked() {
	s.xferIn = nil
	os.Remove(filepath.Join(s.dir, xferProgressName)) //nolint:errcheck // best-effort cleanup
	os.Remove(filepath.Join(s.dir, xferPartName))     //nolint:errcheck // best-effort cleanup
}
