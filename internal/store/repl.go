package store

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"

	"xmlconflict/internal/telemetry/span"
)

// Replication support: a store can export the committed WAL frames past
// an LSN (the primary side of log shipping) and apply frames produced
// elsewhere (the backup side), with the same verify-then-commit
// discipline the live path and recovery use. Frames carry the exact
// payload bytes that hit the primary's WAL plus their CRC-32C, so a
// backup re-verifies the checksum on receipt, re-applies the record
// through the normal mutation path, and re-checks the AHU digest the
// record promised — byte corruption in flight, on either disk, or a
// divergent replica all surface as hard errors, never silent skew.

// ReplFrame is one committed WAL record in transit between replicas.
// Payload is the record's exact WAL payload bytes; CRC is their
// CRC-32C, verified again by the receiver before anything is applied.
type ReplFrame struct {
	LSN     uint64 `json:"lsn"`
	CRC     uint32 `json:"crc"`
	Payload []byte `json:"payload"`
}

// ErrReplGap reports that ApplyFrames was handed a frame that does not
// extend the local log contiguously: the shipper must back up and
// re-send from the receiver's actual LSN (or fall back to full-state
// transfer).
var ErrReplGap = errors.New("store: replication frame gap")

// ErrReplDiverged reports that a shipped frame overlaps the local log
// at an LSN this store has already committed, but with different
// content (or content the bounded frame log can no longer verify). The
// receiver does not hold the sender's write at that LSN — it holds
// something else — and must resync wholesale rather than let the
// sender treat it as replicated.
var ErrReplDiverged = errors.New("store: replicated frame diverges from the local log")

// State is a full-store transfer unit: every document's canonical
// serialization and digest at one LSN. It is the anti-entropy fallback
// when the in-memory frame log no longer reaches back far enough.
type State struct {
	LSN  uint64     `json:"lsn"`
	Docs []StateDoc `json:"docs"`
}

// StateDoc is one document inside a State.
type StateDoc struct {
	ID     string `json:"id"`
	LSN    uint64 `json:"lsn"`
	XML    string `json:"xml"`
	Digest string `json:"digest"`
}

// pushReplFrame retains a just-committed record for shipping; the
// caller holds s.mu. The log is bounded: once it exceeds the configured
// buffer, the oldest frames fall off and lagging peers must catch up by
// full-state transfer instead.
func (s *Store) pushReplFrame(lsn uint64, payload []byte) {
	if s.opts.ReplBuffer <= 0 {
		return
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	s.replLog = append(s.replLog, ReplFrame{
		LSN:     lsn,
		CRC:     crc32.Checksum(cp, castagnoli),
		Payload: cp,
	})
	if excess := len(s.replLog) - s.opts.ReplBuffer; excess > 0 {
		s.replLog = append([]ReplFrame(nil), s.replLog[excess:]...)
	}
}

// FramesSince returns the committed frames with LSN > after, oldest
// first. ok is false when the bounded frame log no longer reaches back
// to after+1 — the caller must fall back to full-state transfer. An
// up-to-date peer (after >= current LSN) gets an empty slice and
// ok=true.
func (s *Store) FramesSince(after uint64) (frames []ReplFrame, ok bool) {
	frames, _, ok = s.FramesSincePage(after, 0, 0)
	return frames, ok
}

// FramesSincePage is FramesSince with a response budget: at most
// maxFrames frames totalling at most maxBytes of payload (both
// ignored when <= 0; the first frame always fits, so progress is
// guaranteed). more is true when budget — not the log — ended the
// page, and the caller should come back for the rest.
func (s *Store) FramesSincePage(after uint64, maxFrames, maxBytes int) (frames []ReplFrame, more, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if after >= s.lsn {
		return nil, false, true
	}
	if len(s.replLog) == 0 || s.replLog[0].LSN > after+1 {
		return nil, false, false
	}
	bytes := 0
	for _, f := range s.replLog {
		if f.LSN <= after {
			continue
		}
		if len(frames) > 0 &&
			((maxFrames > 0 && len(frames) >= maxFrames) ||
				(maxBytes > 0 && bytes+len(f.Payload) > maxBytes)) {
			return frames, true, true
		}
		frames = append(frames, f)
		bytes += len(f.Payload)
	}
	return frames, false, true
}

// ApplyFrames applies replicated frames to this store in order and
// returns the verified watermark: the highest shipped LSN this store
// positively holds — applied now, or proven byte-identical to the
// already-committed local record. Each frame is CRC-verified, decoded,
// checked for contiguity (a frame at or below the current LSN must
// match the retained local record, else ErrReplDiverged; a gap fails
// with ErrReplGap carrying nothing applied beyond the contiguous
// prefix, and the returned LSN rewinds the sender), verified to apply
// cleanly with the promised digest, and only then durably appended to
// the local WAL and committed in memory — the same never-acknowledge-
// what-recovery-cannot-read-back ordering the live path uses.
//
// The watermark is what makes the sender's ack accounting honest: a
// store whose log is AHEAD of the shipped frames with different
// content errors instead of claiming the sender's LSNs, so a diverged
// peer can never satisfy an ack quorum for writes it never received.
//
// verifiedFloor is the caller's provenance bound: LSNs at or below it
// are known to match the sender's log by construction (this store's
// state was imported wholesale from that primary's own export, which
// also cleared the frame log), so overlaps there verify without
// retained frames. Pass 0 when no such import backs the stream.
func (s *Store) ApplyFrames(ctx context.Context, frames []ReplFrame, verifiedFloor uint64) (uint64, error) {
	sp := span.FromContext(ctx).Child("store.repl.apply")
	if sp != nil {
		sp.Set("frames", len(frames))
		defer sp.End()
	}

	s.mu.Lock()
	locked := true
	defer s.guardCommit(&locked)
	unlock := func() { locked = false; s.mu.Unlock() }
	if s.closed {
		unlock()
		sp.Fail(ErrClosed)
		return 0, ErrClosed
	}
	var lastAck func() error
	applied := 0
	var wm uint64 // highest LSN positively verified or applied this call
	var ferr error
	for _, f := range frames {
		if f.LSN <= s.lsn {
			// A duplicate re-ship is only acceptable when the local log
			// provably holds the same record — by import provenance below
			// the floor, or byte-identity against the retained frame log.
			// Skipping unverified would let a peer that is ahead with
			// DIFFERENT content pass as holding writes it never saw.
			if f.LSN > verifiedFloor {
				if err := s.verifyOverlapLocked(f); err != nil {
					ferr = err
					break
				}
			}
			wm = f.LSN
			continue
		}
		if crc32.Checksum(f.Payload, castagnoli) != f.CRC {
			ferr = fmt.Errorf("store: repl frame lsn %d: crc mismatch", f.LSN)
			break
		}
		rec, err := decodeRecord(f.Payload)
		if err != nil {
			ferr = fmt.Errorf("store: repl frame lsn %d: %w", f.LSN, err)
			break
		}
		if rec.LSN != f.LSN {
			ferr = fmt.Errorf("store: repl frame lsn %d: payload claims lsn %d", f.LSN, rec.LSN)
			break
		}
		if rec.LSN != s.lsn+1 {
			ferr = fmt.Errorf("store: repl frame lsn %d does not extend local lsn %d: %w", rec.LSN, s.lsn, ErrReplGap)
			break
		}
		// Verify the record applies cleanly (and reproduces its digest)
		// before any byte reaches the local WAL.
		prep, err := s.prepareReplayed(rec)
		if err != nil {
			ferr = fmt.Errorf("store: repl frame lsn %d: %w", rec.LSN, err)
			break
		}
		ack, err := s.w.Append(f.Payload, sp)
		if err != nil {
			ferr = err
			break
		}
		if ack != nil {
			lastAck = ack
		}
		prep()
		s.advanceLSNLocked(rec.LSN)
		wm = rec.LSN
		s.pushReplFrame(rec.LSN, f.Payload)
		s.m.Add("store.repl.applied", 1)
		applied++
		s.maybeSnapshotLocked()
	}
	lsn := wm
	if lsn == 0 {
		// Nothing verified this call (empty frames, or a gap at the first
		// frame): report the local position so a gapped sender rewinds.
		lsn = s.lsn
	}
	s.m.Gauge("store.docs").Set(int64(len(s.docs)))
	unlock()

	if sp != nil {
		sp.Set("applied", applied)
		sp.Set("lsn", lsn)
	}
	// Group-commit: one wait covers every append above (flush
	// generations are monotone).
	if err := s.awaitAck(lastAck, sp); err != nil {
		return lsn, err
	}
	if ferr != nil {
		sp.Fail(ferr)
	}
	return lsn, ferr
}

// verifyOverlapLocked checks a shipped frame at or below the current
// LSN against the retained local frame log (rebuilt from the WAL on
// recovery, so restarts keep it verifiable). nil means the local record
// is byte-identical — a true duplicate re-ship. Different content, or a
// frame too old for the bounded log to check, is ErrReplDiverged: this
// store cannot prove it holds the sender's write, so it must not be
// counted as holding it. The caller holds s.mu.
func (s *Store) verifyOverlapLocked(f ReplFrame) error {
	if len(s.replLog) > 0 && f.LSN >= s.replLog[0].LSN {
		if i := int(f.LSN - s.replLog[0].LSN); i < len(s.replLog) {
			local := s.replLog[i]
			if local.LSN == f.LSN && local.CRC == f.CRC && len(local.Payload) == len(f.Payload) {
				return nil
			}
			return fmt.Errorf("store: repl frame lsn %d: local log holds different content (local crc %08x, shipped %08x): %w",
				f.LSN, local.CRC, f.CRC, ErrReplDiverged)
		}
	}
	return fmt.Errorf("store: repl frame lsn %d at or below local lsn %d is not retained for verification: %w",
		f.LSN, s.lsn, ErrReplDiverged)
}

// prepareReplayed validates rec against the current in-memory state and
// returns a commit closure that publishes its effect. Nothing is
// mutated until the closure runs; the caller holds s.mu.
func (s *Store) prepareReplayed(rec record) (func(), error) {
	switch rec.Type {
	case "create":
		if _, ok := s.docs[rec.Doc]; ok {
			return nil, fmt.Errorf("replicated create %q: already exists", rec.Doc)
		}
		t, err := s.parseLimited(rec.XML)
		if err != nil {
			return nil, err
		}
		digest := t.Digest()
		if digest != rec.Digest {
			return nil, fmt.Errorf("replicated create %q: digest mismatch", rec.Doc)
		}
		return func() {
			s.docs[rec.Doc] = &doc{id: rec.Doc, tree: t, lsn: rec.LSN, digest: digest}
		}, nil
	case "update":
		d, ok := s.docs[rec.Doc]
		if !ok {
			return nil, fmt.Errorf("replicated update %q: no such doc", rec.Doc)
		}
		u, _, err := s.parseUpdate(Op{Kind: rec.Kind, Pattern: rec.Pattern, X: rec.X})
		if err != nil {
			return nil, err
		}
		newTree, _, digest, err := applyUpdate(d, u)
		if err != nil {
			return nil, err
		}
		if digest != rec.Digest {
			return nil, fmt.Errorf("replicated update %q lsn %d: digest mismatch (shipped %.12s, applied %.12s)",
				rec.Doc, rec.LSN, rec.Digest, digest)
		}
		return func() { s.commitUpdate(d, rec.LSN, rec.Kind, u, newTree, digest) }, nil
	case "drop":
		if _, ok := s.docs[rec.Doc]; !ok {
			return nil, fmt.Errorf("replicated drop %q: no such doc", rec.Doc)
		}
		return func() { delete(s.docs, rec.Doc) }, nil
	}
	return nil, fmt.Errorf("unknown record type %q", rec.Type)
}

// ExportState captures the whole store for full-state transfer.
func (s *Store) ExportState() (State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return State{}, ErrClosed
	}
	st := State{LSN: s.lsn}
	for _, id := range sortedIDs(s.docs) {
		d := s.docs[id]
		st.Docs = append(st.Docs, StateDoc{ID: id, LSN: d.lsn, XML: d.tree.XML(), Digest: d.digest})
	}
	return st, nil
}

// ImportState replaces this store's entire contents with st: the
// catch-up path for a replica too far behind for frame shipping, and
// the reset path for a fenced ex-primary rejoining under a newer epoch.
// Every document is re-parsed and digest-verified before anything is
// replaced; the new state is then durably snapshotted (truncating the
// WAL, whose history no longer describes this state). A snapshot
// failure after the in-memory swap fail-stops the store — memory and
// disk would otherwise disagree about acknowledged state.
func (s *Store) ImportState(ctx context.Context, st State) error {
	sp := span.FromContext(ctx).Child("store.repl.import")
	if sp != nil {
		sp.Set("docs", len(st.Docs))
		sp.Set("lsn", st.LSN)
		defer sp.End()
	}
	newDocs := make(map[string]*doc, len(st.Docs))
	for _, sd := range st.Docs {
		if sd.LSN > st.LSN {
			err := fmt.Errorf("store: import state: doc %q lsn %d beyond state lsn %d", sd.ID, sd.LSN, st.LSN)
			sp.Fail(err)
			return err
		}
		t, err := s.parseLimited(sd.XML)
		if err != nil {
			err = fmt.Errorf("store: import state: doc %q: %w", sd.ID, err)
			sp.Fail(err)
			return err
		}
		if got := t.Digest(); got != sd.Digest {
			err := fmt.Errorf("store: import state: doc %q digest mismatch (shipped %.12s, parsed %.12s)", sd.ID, sd.Digest, got)
			sp.Fail(err)
			return err
		}
		if _, dup := newDocs[sd.ID]; dup {
			err := fmt.Errorf("store: import state: duplicate doc %q", sd.ID)
			sp.Fail(err)
			return err
		}
		newDocs[sd.ID] = &doc{id: sd.ID, tree: t, lsn: sd.LSN, digest: sd.Digest}
	}

	s.mu.Lock()
	locked := true
	defer s.guardCommit(&locked)
	unlock := func() { locked = false; s.mu.Unlock() }
	if s.closed {
		unlock()
		sp.Fail(ErrClosed)
		return ErrClosed
	}
	s.docs = newDocs
	s.advanceLSNLocked(st.LSN)
	s.replLog = nil
	s.m.Gauge("store.docs").Set(int64(len(s.docs)))
	if _, err := s.snapshotLocked(); err != nil {
		// In-memory state no longer matches anything recoverable from
		// disk: refuse to keep serving it.
		s.closed = true
		s.w.Close()
		unlock()
		err = fmt.Errorf("store: import state: snapshot failed, store fail-stopped: %w", err)
		sp.Fail(err)
		return err
	}
	s.m.Add("store.repl.imports", 1)
	unlock()
	return nil
}
