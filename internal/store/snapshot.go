package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"xmlconflict/internal/faultinject"
	"xmlconflict/internal/telemetry"
	"xmlconflict/internal/xmltree"
)

// A snapshot is the whole store at one LSN, so recovery is "load the
// newest valid snapshot, replay the WAL records past its LSN". The
// file reuses the WAL's framing — an 8-byte magic and one
// length+CRC-framed JSON payload — and every document carries its AHU
// digest, re-verified against the re-parsed tree at load time. A
// snapshot that fails any check (magic, frame, checksum, JSON, digest)
// is skipped, and recovery falls back to the next-newest one.
//
// Snapshots are written to a temp file, fsynced, and renamed into
// place, so a crash mid-write can never shadow an older valid
// snapshot with a torn new one.

const snapMagic = "XCSNAP01"

type snapshot struct {
	LSN  uint64    `json:"lsn"`
	Docs []snapDoc `json:"docs"`
}

type snapDoc struct {
	ID     string `json:"id"`
	LSN    uint64 `json:"lsn"`
	XML    string `json:"xml"`    // canonical serialization
	Digest string `json:"digest"` // AHU digest of the tree
}

// snapName is "snap-<lsn as 16 hex digits>.xcsnap", so lexical order is
// LSN order.
func snapName(lsn uint64) string {
	return fmt.Sprintf("snap-%016x.xcsnap", lsn)
}

// snapLSNFromName parses the LSN out of a snapshot filename.
func snapLSNFromName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".xcsnap") {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".xcsnap")
	lsn, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return lsn, true
}

// listSnapshots returns the snapshot filenames in dir, newest first.
func listSnapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: list snapshots: %w", err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := snapLSNFromName(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names, nil
}

// writeSnapshot durably writes snap into dir and returns its path.
// The "store.snapshot.write" fault site sits between the temp-file
// create and the payload write: a panic there models a crash mid-
// snapshot, which must leave the previous snapshot authoritative.
func writeSnapshot(dir string, snap snapshot) (string, error) {
	payload, err := json.Marshal(snap)
	if err != nil {
		return "", fmt.Errorf("store: encode snapshot: %w", err)
	}
	// loadSnapshot's frame scan rejects payloads past maxRecordBytes as
	// corrupt, so writing one would publish a snapshot recovery refuses
	// to read — and the caller would then reset the WAL, losing the
	// whole store. Fail here instead; the WAL keeps everything.
	if len(payload) > maxRecordBytes {
		return "", fmt.Errorf("store: snapshot payload %d bytes exceeds the %d-byte frame limit", len(payload), maxRecordBytes)
	}
	final := filepath.Join(dir, snapName(snap.LSN))
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return "", fmt.Errorf("store: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := faultinject.Fire("store.snapshot.write"); err != nil {
		tmp.Close()
		return "", err
	}
	if _, err := tmp.Write([]byte(snapMagic)); err == nil {
		_, err = tmp.Write(encodeFrame(payload))
		if err == nil {
			err = tmp.Sync()
		}
	}
	if err != nil {
		tmp.Close()
		return "", fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("store: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", fmt.Errorf("store: publish snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return final, nil
}

// loadSnapshot reads and fully verifies one snapshot file: magic,
// frame checksum, JSON shape, and — after re-parsing each document —
// the recorded AHU digest.
func loadSnapshot(path string, lim xmltree.ParseLimits) (snapshot, map[string]*xmltree.Tree, error) {
	var snap snapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return snap, nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	if len(b) < len(snapMagic) || string(b[:len(snapMagic)]) != snapMagic {
		return snap, nil, fmt.Errorf("store: snapshot %s: bad magic", filepath.Base(path))
	}
	payloads, used, torn := scanFrames(b[len(snapMagic):])
	if torn || len(payloads) != 1 || len(snapMagic)+used != len(b) {
		return snap, nil, fmt.Errorf("store: snapshot %s: torn or malformed frame", filepath.Base(path))
	}
	if err := json.Unmarshal(payloads[0], &snap); err != nil {
		return snap, nil, fmt.Errorf("store: snapshot %s: %w", filepath.Base(path), err)
	}
	trees := make(map[string]*xmltree.Tree, len(snap.Docs))
	for _, d := range snap.Docs {
		t, err := xmltree.ParseWithLimits(strings.NewReader(d.XML), lim)
		if err != nil {
			return snap, nil, fmt.Errorf("store: snapshot %s: doc %q: %w", filepath.Base(path), d.ID, err)
		}
		if got := t.Digest(); got != d.Digest {
			return snap, nil, fmt.Errorf("store: snapshot %s: doc %q digest mismatch (stored %.12s, recomputed %.12s)",
				filepath.Base(path), d.ID, d.Digest, got)
		}
		if d.LSN > snap.LSN {
			return snap, nil, fmt.Errorf("store: snapshot %s: doc %q lsn %d beyond snapshot lsn %d",
				filepath.Base(path), d.ID, d.LSN, snap.LSN)
		}
		trees[d.ID] = t
	}
	return snap, trees, nil
}

// pruneSnapshots removes all but the keep newest snapshot files,
// counting every listing or removal failure in the
// "store.snapshot.prune_errors" counter so an undeletable backlog is
// observable instead of silently accumulating. curLSN is the LSN of
// the snapshot this store just published: no snapshot at or beyond it
// is ever removed, even when the directory listing says it fell past
// the keep window — a prune racing another Open writing newer-LSN
// snapshots into the same directory must not delete the newest state
// this store can recover from.
func pruneSnapshots(dir string, keep int, curLSN uint64, m *telemetry.Metrics) {
	names, err := listSnapshots(dir)
	if err != nil {
		m.Add("store.snapshot.prune_errors", 1)
		return
	}
	if len(names) <= keep {
		return
	}
	for _, name := range names[keep:] {
		if lsn, ok := snapLSNFromName(name); ok && lsn >= curLSN {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
			m.Add("store.snapshot.prune_errors", 1)
		}
	}
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: fsync dir: %w", err)
	}
	return nil
}
