package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestRecoveryLongestDurablePrefix is the crash-point property test:
// after N committed updates, truncating the WAL at EVERY byte offset of
// the tail record (and at every earlier frame boundary) and recovering
// must yield exactly the longest prefix of commits whose frames
// survived whole — verified by AHU digest against the digest each
// commit acknowledged.
func TestRecoveryLongestDurablePrefix(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Fsync: FsyncNever})

	rng := rand.New(rand.NewSource(7))
	labels := []string{"a", "b", "c"}
	randomFragment := func() string {
		l1, l2 := labels[rng.Intn(3)], labels[rng.Intn(3)]
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("<%s/>", l1)
		}
		return fmt.Sprintf("<%s><%s/></%s>", l1, l2, l1)
	}

	// digests[i] is the doc's acknowledged digest after the i-th WAL
	// record; digests[0] is the create.
	var digests []string
	digests = append(digests, mustCreate(t, s, "d", "<a><b/><c/></a>").Digest)
	const updates = 8
	for i := 0; i < updates; i++ {
		var res Result
		if rng.Intn(4) == 0 {
			res = mustSubmit(t, s, "d", Op{Kind: "delete", Pattern: "//" + labels[rng.Intn(2)+1]})
		} else {
			res = mustSubmit(t, s, "d", Op{Kind: "insert", Pattern: "//" + labels[rng.Intn(2)], X: randomFragment()})
		}
		digests = append(digests, res.Digest)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, "wal.log")
	whole, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries: bounds[k] is the file offset after k complete
	// records.
	payloads, used, torn := scanFrames(whole[len(walMagic):])
	if torn || len(walMagic)+used != len(whole) || len(payloads) != len(digests) {
		t.Fatalf("wal shape: %d payloads, used %d of %d, torn=%v", len(payloads), used, len(whole)-len(walMagic), torn)
	}
	bounds := []int{len(walMagic)}
	for _, p := range payloads {
		bounds = append(bounds, bounds[len(bounds)-1]+frameHead+len(p))
	}

	// Every byte offset of the tail record, plus every earlier frame
	// boundary and one mid-record offset per earlier record.
	offsets := map[int]bool{}
	for off := bounds[len(bounds)-2]; off <= len(whole); off++ {
		offsets[off] = true
	}
	for k := 0; k < len(bounds)-1; k++ {
		offsets[bounds[k]] = true
		offsets[bounds[k]+3] = true // inside record k's frame header
	}

	crash := t.TempDir()
	for off := range offsets {
		// durable = number of complete records at or before off
		durable := 0
		for k := 1; k < len(bounds); k++ {
			if bounds[k] <= off {
				durable = k
			}
		}

		cdir := filepath.Join(crash, fmt.Sprintf("at-%d", off))
		if err := os.MkdirAll(cdir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cdir, "wal.log"), whole[:off], 0o644); err != nil {
			t.Fatal(err)
		}

		rs, err := Open(cdir, Options{})
		if err != nil {
			t.Fatalf("offset %d: Open: %v", off, err)
		}
		if durable == 0 {
			if _, err := rs.Get("d"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("offset %d: want no doc, got %v", off, err)
			}
		} else {
			info, err := rs.Get("d")
			if err != nil {
				t.Fatalf("offset %d (durable %d): %v", off, durable, err)
			}
			if info.Digest != digests[durable-1] {
				t.Fatalf("offset %d: recovered digest %.12s, want commit %d's %.12s",
					off, info.Digest, durable-1, digests[durable-1])
			}
			if info.LSN != uint64(durable) {
				t.Fatalf("offset %d: recovered lsn %d, want %d", off, info.LSN, durable)
			}
		}
		// A truncation strictly inside a frame must be detected as torn.
		mid := off > bounds[durable] && off < len(whole)
		if mid && rs.m.Counter("store.torn_tail").Load() == 0 {
			t.Fatalf("offset %d: torn tail not counted", off)
		}
		rs.Close()
		os.RemoveAll(cdir)
	}
}

// TestRecoveryDigestMismatchEndsPrefix: a record whose checksum is
// intact but whose digest no longer matches the replayed state (here:
// because the record before it was surgically cut out) ends the durable
// prefix at the corruption, not past it.
func TestRecoveryReplayAbortOnBadRecord(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Fsync: FsyncNever})
	mustCreate(t, s, "d", "<a/>")
	first := mustSubmit(t, s, "d", Op{Kind: "insert", Pattern: "/a", X: "<x/>"})
	mustSubmit(t, s, "d", Op{Kind: "insert", Pattern: "/a/x", X: "<y/>"})
	s.Close()

	walPath := filepath.Join(dir, "wal.log")
	whole, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	payloads, _, _ := scanFrames(whole[len(walMagic):])
	if len(payloads) != 3 {
		t.Fatalf("want 3 records, got %d", len(payloads))
	}
	// Re-frame record 2 with record 1's LSN: the checksum is valid but
	// the LSN regresses — replay must stop after record 1 (the insert),
	// keeping its acknowledged state.
	var rewritten []byte
	rewritten = append(rewritten, walMagic...)
	rewritten = append(rewritten, encodeFrame(payloads[0])...)
	rewritten = append(rewritten, encodeFrame(payloads[1])...)
	rec, err := decodeRecord(payloads[2])
	if err != nil {
		t.Fatal(err)
	}
	rec.LSN = 2 // same as record 1: a regression
	bad, err := encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	rewritten = append(rewritten, encodeFrame(bad)...)
	if err := os.WriteFile(walPath, rewritten, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{})
	if s2.m.Counter("store.replay_aborts").Load() != 1 {
		t.Fatal("store.replay_aborts not incremented")
	}
	info, err := s2.Get("d")
	if err != nil || info.Digest != first.Digest {
		t.Fatalf("prefix after abort: %+v, %v", info, err)
	}
	// The poisoned tail was truncated: the next reopen is clean.
	s2.Close()
	s3 := openTest(t, dir, Options{})
	if s3.m.Counter("store.replay_aborts").Load() != 0 {
		t.Fatal("abort tail not truncated from disk")
	}
}

// TestRecoveryDigestReverification: a bit-flip inside a record that
// happens to keep its JSON valid is caught by the digest check. We
// simulate it by rewriting an insert's fragment (and re-checksumming,
// as a disk that corrupts before checksumming would).
func TestRecoveryDigestReverification(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Fsync: FsyncNever})
	mustCreate(t, s, "d", "<a/>")
	keep := mustSubmit(t, s, "d", Op{Kind: "insert", Pattern: "/a", X: "<x/>"})
	mustSubmit(t, s, "d", Op{Kind: "insert", Pattern: "/a", X: "<y/>"})
	s.Close()

	walPath := filepath.Join(dir, "wal.log")
	whole, _ := os.ReadFile(walPath)
	payloads, _, _ := scanFrames(whole[len(walMagic):])
	rec, err := decodeRecord(payloads[2])
	if err != nil {
		t.Fatal(err)
	}
	rec.X = "<z/>" // replay will graft the wrong fragment
	bad, _ := encodeRecord(rec)
	rewritten := append([]byte{}, walMagic...)
	rewritten = append(rewritten, encodeFrame(payloads[0])...)
	rewritten = append(rewritten, encodeFrame(payloads[1])...)
	rewritten = append(rewritten, encodeFrame(bad)...)
	if err := os.WriteFile(walPath, rewritten, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{})
	if s2.m.Counter("store.replay_aborts").Load() != 1 {
		t.Fatal("digest mismatch not counted as replay abort")
	}
	info, err := s2.Get("d")
	if err != nil || info.Digest != keep.Digest {
		t.Fatalf("state after digest mismatch: %+v, %v", info, err)
	}
}

// TestRecoveryIdempotent: recovering twice from the same directory
// yields identical state (replay does not double-apply records covered
// by the snapshot).
func TestRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	mustCreate(t, s, "d", "<a/>")
	mustSubmit(t, s, "d", Op{Kind: "insert", Pattern: "/a", X: "<x/>"})
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	want := mustSubmit(t, s, "d", Op{Kind: "insert", Pattern: "/a", X: "<x/>"})
	s.Close()

	for i := 0; i < 2; i++ {
		ri, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		info, err := ri.Get("d")
		if err != nil || info.Digest != want.Digest || info.LSN != want.LSN {
			t.Fatalf("recovery %d: %+v, %v", i, info, err)
		}
		ri.Close()
	}
}

// TestRecoveryRefusesLSNGapAfterSnapshotFallback: the WAL is truncated
// at each snapshot, so when the newest snapshot fails verification and
// recovery falls back to an older generation, the WAL's records start
// past a hole of acknowledged commits. Replaying them onto the older
// base would fabricate a state that never existed; Open must refuse.
func TestRecoveryRefusesLSNGapAfterSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	mustCreate(t, s, "d", "<a/>") // lsn 1
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, s, "d", Op{Kind: "insert", Pattern: "/a", X: "<x/>"}) // lsn 2
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err) // snapshot at lsn 2; the WAL restarts empty
	}
	mustSubmit(t, s, "d", Op{Kind: "insert", Pattern: "/a", X: "<y/>"}) // lsn 3, in the WAL
	s.Close()

	names, _ := listSnapshots(dir)
	if len(names) != 2 {
		t.Fatalf("want 2 snapshot generations, got %v", names)
	}
	corruptFile(t, filepath.Join(dir, names[0]), -3)

	// Fallback lands on the lsn-1 snapshot, but the WAL resumes at
	// lsn 3: lsn 2 is an acknowledged commit nothing on disk can
	// reproduce.
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("want Open to refuse the lsn gap")
	}
}

// TestRecoveryAbortsOnLSNGapMidWAL: commit-time LSNs are contiguous, so
// a strictly-increasing-but-gapped record inside the WAL is corruption
// the checksum happened to bless; replay ends the durable prefix there.
func TestRecoveryAbortsOnLSNGapMidWAL(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Fsync: FsyncNever})
	mustCreate(t, s, "d", "<a/>")
	keep := mustSubmit(t, s, "d", Op{Kind: "insert", Pattern: "/a", X: "<x/>"})
	mustSubmit(t, s, "d", Op{Kind: "insert", Pattern: "/a", X: "<y/>"})
	s.Close()

	walPath := filepath.Join(dir, "wal.log")
	whole, _ := os.ReadFile(walPath)
	payloads, _, _ := scanFrames(whole[len(walMagic):])
	rec, err := decodeRecord(payloads[2])
	if err != nil {
		t.Fatal(err)
	}
	rec.LSN = 7 // skips 4..6: a gap, not believable history
	bad, _ := encodeRecord(rec)
	rewritten := append([]byte{}, walMagic...)
	rewritten = append(rewritten, encodeFrame(payloads[0])...)
	rewritten = append(rewritten, encodeFrame(payloads[1])...)
	rewritten = append(rewritten, encodeFrame(bad)...)
	if err := os.WriteFile(walPath, rewritten, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{})
	if s2.m.Counter("store.replay_aborts").Load() != 1 {
		t.Fatal("lsn gap not treated as corruption")
	}
	info, err := s2.Get("d")
	if err != nil || info.Digest != keep.Digest {
		t.Fatalf("prefix after gap abort: %+v, %v", info, err)
	}
}
