package store

import (
	"context"
	"errors"
	"hash/crc32"
	"strings"
	"testing"
)

// shipAll moves every frame past dst's LSN from src to dst, the way the
// replica shipper does.
func shipAll(t *testing.T, src, dst *Store) {
	t.Helper()
	frames, ok := src.FramesSince(dst.LSN())
	if !ok {
		t.Fatalf("FramesSince(%d) fell off the buffer", dst.LSN())
	}
	if _, err := dst.ApplyFrames(context.Background(), frames, 0); err != nil {
		t.Fatalf("ApplyFrames: %v", err)
	}
}

func TestReplFrameShipping(t *testing.T) {
	primary, err := Open(t.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	backup, err := Open(t.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer backup.Close()

	if _, err := primary.Create("d", "<a><b/><c/></a>"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := primary.Submit("d", Op{Kind: "insert", Pattern: "/a/b", X: "<x/>"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := primary.Create("gone", "<t/>"); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Drop("gone"); err != nil {
		t.Fatal(err)
	}

	shipAll(t, primary, backup)

	if got, want := backup.LSN(), primary.LSN(); got != want {
		t.Fatalf("backup lsn %d, primary %d", got, want)
	}
	pi, err := primary.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	bi, err := backup.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	if pi.Digest != bi.Digest || pi.XML != bi.XML {
		t.Fatalf("replica diverged: primary %s %q, backup %s %q", pi.Digest, pi.XML, bi.Digest, bi.XML)
	}
	if _, err := backup.Get("gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dropped doc survived replication: %v", err)
	}

	// Re-shipping the same frames must be an idempotent no-op.
	frames, ok := primary.FramesSince(0)
	if !ok {
		t.Fatal("full history fell off the buffer")
	}
	if _, err := backup.ApplyFrames(context.Background(), frames, 0); err != nil {
		t.Fatalf("duplicate ship: %v", err)
	}
	if backup.LSN() != primary.LSN() {
		t.Fatalf("lsn moved on duplicate ship")
	}
}

func TestReplFramesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("d", "<a/>"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("d", Op{Kind: "insert", Pattern: "/a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: replayed records must be shippable again so a restarted
	// primary can still serve anti-entropy for its retained tail.
	s2, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	frames, ok := s2.FramesSince(0)
	if !ok || len(frames) != 2 {
		t.Fatalf("after restart FramesSince(0) = %d frames, ok=%v; want 2, true", len(frames), ok)
	}
}

func TestReplGapAndCorruption(t *testing.T) {
	primary, err := Open(t.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	backup, err := Open(t.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer backup.Close()

	for _, id := range []string{"a", "b", "c"} {
		if _, err := primary.Create(id, "<r/>"); err != nil {
			t.Fatal(err)
		}
	}
	frames, _ := primary.FramesSince(0)

	// A gap (skipping the first frame) must be refused with ErrReplGap
	// and leave the backup untouched.
	if _, err := backup.ApplyFrames(context.Background(), frames[1:], 0); !errors.Is(err, ErrReplGap) {
		t.Fatalf("gap: got %v, want ErrReplGap", err)
	}
	if backup.LSN() != 0 {
		t.Fatalf("gap advanced backup lsn to %d", backup.LSN())
	}

	// A flipped payload byte must fail the CRC check.
	bad := make([]ReplFrame, len(frames))
	copy(bad, frames)
	p := make([]byte, len(bad[0].Payload))
	copy(p, bad[0].Payload)
	p[len(p)/2] ^= 0xff
	bad[0].Payload = p
	if _, err := backup.ApplyFrames(context.Background(), bad, 0); err == nil || !strings.Contains(err.Error(), "crc mismatch") {
		t.Fatalf("corrupt payload: got %v, want crc mismatch", err)
	}

	// A frame whose CRC matches a tampered payload still fails the
	// digest re-verification (payload decodes but promises the original
	// digest) or the decode; either way nothing past it applies.
	bad[0].CRC = crc32.Checksum(p, castagnoli)
	if _, err := backup.ApplyFrames(context.Background(), bad, 0); err == nil {
		t.Fatal("tampered-but-recrc'd payload applied cleanly")
	}
	if backup.LSN() != 0 {
		t.Fatalf("tampered ship advanced backup lsn to %d", backup.LSN())
	}

	// The honest frames still apply after all those rejections.
	shipAll(t, primary, backup)
	if backup.LSN() != primary.LSN() {
		t.Fatalf("backup lsn %d, primary %d", backup.LSN(), primary.LSN())
	}
}

func TestReplBufferFallsBackToState(t *testing.T) {
	primary, err := Open(t.TempDir(), Options{Fsync: FsyncNever, ReplBuffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	if _, err := primary.Create("d", "<a/>"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := primary.Submit("d", Op{Kind: "insert", Pattern: "/a"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := primary.FramesSince(0); ok {
		t.Fatal("FramesSince(0) should have fallen off a 4-frame buffer")
	}

	// Full-state transfer is the fallback.
	st, err := primary.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	backup, err := Open(t.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer backup.Close()
	if err := backup.ImportState(context.Background(), st); err != nil {
		t.Fatal(err)
	}
	if backup.LSN() != primary.LSN() {
		t.Fatalf("imported lsn %d, want %d", backup.LSN(), primary.LSN())
	}
	pi, _ := primary.Get("d")
	bi, err := backup.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	if pi.Digest != bi.Digest {
		t.Fatalf("import digest %s, want %s", bi.Digest, pi.Digest)
	}

	// And frame shipping resumes from the imported LSN.
	if _, err := primary.Submit("d", Op{Kind: "insert", Pattern: "/a"}); err != nil {
		t.Fatal(err)
	}
	shipAll(t, primary, backup)
	if backup.LSN() != primary.LSN() {
		t.Fatalf("post-import ship: backup %d, primary %d", backup.LSN(), primary.LSN())
	}
	pi, _ = primary.Get("d")

	// The imported state must survive a restart (it was snapshotted).
	dir := backup.dir
	if err := backup.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("reopen after import: %v", err)
	}
	defer re.Close()
	if re.LSN() != primary.LSN() {
		t.Fatalf("recovered lsn %d, want %d", re.LSN(), primary.LSN())
	}
	ri, err := re.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	if ri.Digest != pi.Digest {
		t.Fatalf("recovered digest %s, want %s", ri.Digest, pi.Digest)
	}
}

// TestReplDivergentOverlapRefused: a receiver whose log already holds
// DIFFERENT content at a shipped LSN must refuse with ErrReplDiverged,
// not skip the frame and let the sender count it as replicated — that
// skip is how a diverged peer used to satisfy ack quorums for writes it
// never saw.
func TestReplDivergentOverlapRefused(t *testing.T) {
	a, err := Open(t.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(t.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Both stores commit LSN 1, with different writes.
	if _, err := a.Create("d", "<r><from-a/></r>"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Create("d", "<r><from-b/></r>"); err != nil {
		t.Fatal(err)
	}
	frames, _ := a.FramesSince(0)
	if _, err := b.ApplyFrames(context.Background(), frames, 0); !errors.Is(err, ErrReplDiverged) {
		t.Fatalf("divergent overlap: got %v, want ErrReplDiverged", err)
	}
	// b's own write is untouched — nothing from a was half-applied.
	bi, err := b.Get("d")
	if err != nil || !strings.Contains(bi.XML, "from-b") {
		t.Fatalf("receiver mutated by refused ship: %q err=%v", bi.XML, err)
	}

	// The same refusal when the receiver is AHEAD of the sender: extra
	// local commits do not make the shipped prefix verifiable.
	if _, err := b.Submit("d", Op{Kind: "insert", Pattern: "/r", X: "<more/>"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ApplyFrames(context.Background(), frames, 0); !errors.Is(err, ErrReplDiverged) {
		t.Fatalf("divergent overlap (receiver ahead): got %v, want ErrReplDiverged", err)
	}
}

// TestReplWatermarkBoundsDuplicateShip: re-shipping a verified prefix
// returns the highest SHIPPED lsn, never the receiver's own position —
// a sender must not adopt acks for frames it did not put on the wire.
func TestReplWatermarkBoundsDuplicateShip(t *testing.T) {
	primary, err := Open(t.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	backup, err := Open(t.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer backup.Close()

	if _, err := primary.Create("d", "<a/>"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := primary.Submit("d", Op{Kind: "insert", Pattern: "/a"}); err != nil {
			t.Fatal(err)
		}
	}
	shipAll(t, primary, backup) // backup at lsn 4

	frames, _ := primary.FramesSince(0)
	lsn, err := backup.ApplyFrames(context.Background(), frames[:2], 0)
	if err != nil {
		t.Fatalf("duplicate prefix ship: %v", err)
	}
	if lsn != 2 {
		t.Fatalf("watermark for a 2-frame duplicate ship = %d, want 2 (receiver lsn %d must not leak)", lsn, backup.LSN())
	}
}

// TestReplOverlapVerifiedByImportProvenance: after a full-state import
// the frame log is empty, so overlapping re-ships cannot be verified by
// byte-identity — only the caller's provenance floor (the import came
// from this very sender) makes them acceptable.
func TestReplOverlapVerifiedByImportProvenance(t *testing.T) {
	primary, err := Open(t.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	if _, err := primary.Create("d", "<a/>"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := primary.Submit("d", Op{Kind: "insert", Pattern: "/a"}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := primary.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	backup, err := Open(t.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer backup.Close()
	if err := backup.ImportState(context.Background(), st); err != nil {
		t.Fatal(err)
	}

	// Without the floor, the overlap is unverifiable: refuse.
	frames, _ := primary.FramesSince(0)
	if _, err := backup.ApplyFrames(context.Background(), frames, 0); !errors.Is(err, ErrReplDiverged) {
		t.Fatalf("unverifiable overlap without floor: got %v, want ErrReplDiverged", err)
	}
	// With the floor at the import LSN, provenance covers the overlap and
	// the watermark reaches the end of the shipped range.
	lsn, err := backup.ApplyFrames(context.Background(), frames, st.LSN)
	if err != nil || lsn != st.LSN {
		t.Fatalf("overlap under floor: lsn=%d err=%v, want %d, nil", lsn, err, st.LSN)
	}
	// Frames past the floor still apply normally on the same stream.
	if _, err := primary.Submit("d", Op{Kind: "insert", Pattern: "/a"}); err != nil {
		t.Fatal(err)
	}
	frames, _ = primary.FramesSince(0)
	lsn, err = backup.ApplyFrames(context.Background(), frames, st.LSN)
	if err != nil || lsn != primary.LSN() || backup.LSN() != primary.LSN() {
		t.Fatalf("ship past floor: lsn=%d err=%v backup=%d, want all at %d", lsn, err, backup.LSN(), primary.LSN())
	}
}

func TestImportStateRejectsBadDigest(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := State{LSN: 3, Docs: []StateDoc{{ID: "d", LSN: 3, XML: "<a/>", Digest: "not-the-digest"}}}
	if err := s.ImportState(context.Background(), st); err == nil {
		t.Fatal("bad-digest import accepted")
	}
	// The store must be untouched and still usable.
	if _, err := s.Create("ok", "<r/>"); err != nil {
		t.Fatalf("store unusable after rejected import: %v", err)
	}
}
