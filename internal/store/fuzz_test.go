package store

import (
	"bytes"
	"testing"
)

// FuzzWALRecord throws arbitrary bytes at the WAL's frame scanner and
// record decoder: neither may panic, the scanner must never read past
// its input or emit frames that do not re-verify, and a valid prefix
// must round-trip through re-encoding.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("XCWAL001"))
	f.Add(encodeFrame([]byte(`{"lsn":1,"type":"create","doc":"d","xml":"<a/>"}`)))
	f.Add(encodeFrame([]byte(`{"lsn":2,"type":"update","doc":"d","kind":"insert","pattern":"/a","x":"<x/>","digest":"ff"}`)))
	f.Add(append(encodeFrame([]byte(`{"lsn":1}`)), encodeFrame([]byte(`{"lsn":2}`))[:5]...))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, b []byte) {
		payloads, used, torn := scanFrames(b)
		if used < 0 || used > len(b) {
			t.Fatalf("used %d out of range [0,%d]", used, len(b))
		}
		if torn && used == len(b) {
			t.Fatal("torn tail reported with no unconsumed bytes")
		}
		if !torn && used != len(b) {
			t.Fatalf("clean scan consumed %d of %d bytes", used, len(b))
		}
		// Whatever the scanner accepted must survive re-framing: the
		// valid prefix is self-describing.
		var rebuilt []byte
		for _, p := range payloads {
			rebuilt = append(rebuilt, encodeFrame(p)...)
		}
		if !bytes.Equal(rebuilt, b[:used]) {
			t.Fatalf("re-encoded prefix differs: %d bytes vs %d", len(rebuilt), used)
		}
		// Decoding accepted payloads must not panic; successfully
		// decoded records must re-encode and re-decode to themselves.
		for _, p := range payloads {
			rec, err := decodeRecord(p)
			if err != nil {
				continue
			}
			out, err := encodeRecord(rec)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			back, err := decodeRecord(out)
			if err != nil || back != rec {
				t.Fatalf("record round trip: %+v vs %+v (%v)", back, rec, err)
			}
		}
	})
}
