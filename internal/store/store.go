// Package store is the durable document store that turns the conflict
// detector from an oracle into a concurrency-control mechanism over
// real state. Clients register named XML trees and submit READ, INSERT,
// and DELETE operations (the paper's Section 3 vocabulary) against
// them; operations carrying an optimistic base LSN are admitted through
// the detector — an operation commits only if it commutes with (or is
// untouched by, for reads) every update that landed after its base —
// and rejected operations fail with a machine-readable ConflictError
// naming the node/tree/value semantics that fired.
//
// Durability is a checksummed, length-prefixed write-ahead log with a
// configurable fsync policy (always / group-commit / never) and
// monotonic LSNs, plus periodic whole-store snapshots (canonical
// serialization + AHU digests) that truncate the log. Recovery replays
// the WAL over the newest valid snapshot, cleanly cutting any torn
// tail and re-verifying every replayed record's checksum and digest,
// so a crash anywhere — including mid-append — converges to exactly
// the longest durable prefix of acknowledged commits.
package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"xmlconflict/internal/ops"
	"xmlconflict/internal/telemetry"
	"xmlconflict/internal/telemetry/span"
	"xmlconflict/internal/xmltree"
	"xmlconflict/internal/xpath"
)

// Options configures a Store. The zero value is a usable default:
// fsync on every commit, a 32-update admission window, snapshots only
// on demand.
type Options struct {
	// Fsync selects the durability policy for commits.
	Fsync FsyncPolicy
	// FsyncInterval is the group-commit cadence under FsyncGroup
	// (default 5ms).
	FsyncInterval time.Duration
	// SnapshotEvery takes an automatic snapshot (and truncates the WAL)
	// after this many appended records; 0 snapshots only on demand.
	SnapshotEvery int
	// HistoryWindow is how many committed updates per document remain
	// available for optimistic admission checks (default 32). Bases
	// older than the window are rejected with ErrStaleBase.
	HistoryWindow int
	// KeepSnapshots is how many snapshot generations survive pruning
	// (default 2: the newest plus one fallback).
	KeepSnapshots int
	// Limits bounds document parsing everywhere the store parses XML
	// (Create, WAL replay, snapshot load). Zero value means
	// xmltree.DefaultParseLimits.
	Limits xmltree.ParseLimits
	// ReplBuffer is how many committed WAL frames stay buffered in
	// memory for replication shipping (FramesSince); peers that fall
	// further behind catch up by full-state transfer. 0 means the
	// default 1024; negative disables the buffer entirely.
	ReplBuffer int
	// XferChunkBytes is the default chunk size for resumable
	// full-state transfer (ExportChunk). 0 means 1 MiB; values above
	// the 8 MiB hard cap are clamped.
	XferChunkBytes int
	// Metrics receives the store.* counters and timers; nil gets a
	// private registry.
	Metrics *telemetry.Metrics
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 5 * time.Millisecond
	}
	if o.HistoryWindow <= 0 {
		o.HistoryWindow = 32
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 2
	}
	if o.ReplBuffer == 0 {
		o.ReplBuffer = 1024
	}
	if o.XferChunkBytes <= 0 {
		o.XferChunkBytes = 1 << 20
	}
	if o.Limits == (xmltree.ParseLimits{}) {
		o.Limits = xmltree.DefaultParseLimits()
	}
	if o.Metrics == nil {
		o.Metrics = telemetry.New()
	}
	return o
}

// Op is one submitted operation against a document.
type Op struct {
	// Kind is "read", "insert", or "delete".
	Kind string
	// Pattern is the operation's XPath expression.
	Pattern string
	// X is the XML fragment an insert grafts (default "<new/>").
	X string
	// Sem is the conflict semantics a read's admission check runs
	// under (updates always use value semantics — commutation).
	Sem ops.Semantics
	// BaseLSN is the LSN the client last observed for the document; 0
	// submits against the current state with no admission check.
	BaseLSN uint64
}

// Result reports a committed (or evaluated) operation.
type Result struct {
	// Doc is the document id.
	Doc string
	// LSN is the document's LSN after the operation (unchanged by
	// reads).
	LSN uint64
	// Digest is the document's AHU digest after the operation.
	Digest string
	// Points is how many pattern matches an update applied at.
	Points int
	// Nodes holds, for reads, the canonical XML of each subtree the
	// pattern selected, in node-identity order.
	Nodes []string
}

// Info describes a stored document.
type Info struct {
	Doc    string
	LSN    uint64
	Digest string
	XML    string
	Size   int
}

// histEntry is one committed update retained for optimistic admission:
// the update itself plus the (immutable) tree it applied to.
type histEntry struct {
	lsn    uint64 // the update's commit LSN
	preLSN uint64 // the document LSN the update applied on
	kind   string
	upd    ops.Update
	pre    *xmltree.Tree
}

type doc struct {
	id     string
	tree   *xmltree.Tree
	lsn    uint64
	digest string
	hist   []histEntry
}

// Store is a durable, conflict-scheduled document store. All methods
// are safe for concurrent use.
type Store struct {
	dir  string
	opts Options
	m    *telemetry.Metrics

	mu        sync.Mutex
	w         *wal
	docs      map[string]*doc
	lsn       uint64
	lsnCh     chan struct{} // closed (and dropped) whenever lsn advances; see WaitLSN
	sinceSnap int
	closed    bool
	replLog   []ReplFrame // bounded tail of committed frames for shipping

	// xferMu guards the resumable state-transfer machinery (separate
	// from mu: chunk IO must not block the commit path).
	xferMu  sync.Mutex
	xferOut []*xferExport // exporter session cache
	xferIn  *xferProgress // importer resume record (mirrors disk)
}

// Open loads (or initializes) a store rooted at dir: the newest valid
// snapshot is loaded, the WAL is replayed over it with full checksum
// and digest re-verification, and any torn tail is truncated away.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := ensureDir(dir); err != nil {
		return nil, err
	}
	s := &Store{
		dir:  dir,
		opts: opts,
		m:    opts.Metrics,
		docs: map[string]*doc{},
	}

	// 1. Newest snapshot that verifies end to end wins; invalid ones
	// are counted and skipped in favor of older generations.
	names, err := listSnapshots(dir)
	if err != nil {
		return nil, err
	}
	var snapLSN uint64
	hadState := len(names) > 0
	for _, name := range names {
		snap, trees, err := loadSnapshot(filepath.Join(dir, name), opts.Limits)
		if err != nil {
			s.m.Add("store.bad_snapshots", 1)
			continue
		}
		for _, sd := range snap.Docs {
			s.docs[sd.ID] = &doc{id: sd.ID, tree: trees[sd.ID], lsn: sd.LSN, digest: sd.Digest}
		}
		snapLSN = snap.LSN
		s.lsn = snap.LSN
		break
	}

	// 2. Open the log, cutting any torn tail the framing scan finds.
	w, payloads, torn, err := openWAL(filepath.Join(dir, "wal.log"), opts.Fsync, opts.FsyncInterval, s.m)
	if err != nil {
		return nil, err
	}
	s.w = w
	if torn {
		s.m.Add("store.torn_tail", 1)
	}
	hadState = hadState || len(payloads) > 0

	// 3. Replay records past the snapshot. LSNs are assigned
	// contiguously at commit time, so the WAL must be a contiguous run:
	// a gap or regression is corruption the checksum happened to bless.
	// A record that fails to decode, apply, or re-verify its digest
	// ends the durable prefix right there: it and everything after it
	// are truncated, exactly as a torn tail is.
	off := int64(len(walMagic))
	prevLSN := uint64(0)
	replayed := false
	for _, payload := range payloads {
		abort := func(counter string) error {
			s.m.Add(counter, 1)
			if err := w.truncateTo(off); err != nil {
				return err
			}
			return nil
		}
		rec, derr := decodeRecord(payload)
		if derr != nil || rec.LSN == 0 || (prevLSN != 0 && rec.LSN != prevLSN+1) {
			if err := abort("store.replay_aborts"); err != nil {
				return nil, err
			}
			break
		}
		prevLSN = rec.LSN
		if rec.LSN > snapLSN {
			// The first replayed record must sit exactly one past the
			// snapshot. A gap means the WAL was truncated at a newer
			// snapshot that failed verification: the missing LSNs are
			// acknowledged commits nothing on disk can reproduce, so
			// refuse to open rather than recover a state that never
			// existed (an older base with newer creates/drops applied).
			if !replayed && rec.LSN != snapLSN+1 {
				w.Close()
				return nil, fmt.Errorf(
					"store: wal resumes at lsn %d but the newest loadable snapshot is at lsn %d: acknowledged commits %d..%d are unrecoverable (a newer snapshot failed verification); refusing to open",
					rec.LSN, snapLSN, snapLSN+1, rec.LSN-1)
			}
			replayed = true
			if err := s.applyReplayed(rec); err != nil {
				if err := abort("store.replay_aborts"); err != nil {
					return nil, err
				}
				break
			}
			s.m.Add("store.replayed", 1)
			s.lsn = rec.LSN
			s.pushReplFrame(rec.LSN, payload)
		}
		off += int64(frameHead + len(payload))
	}

	if hadState {
		s.m.Add("store.recoveries", 1)
	}
	s.m.Gauge("store.docs").Set(int64(len(s.docs)))
	return s, nil
}

// truncateTo cuts the WAL at off (used when replay stops trusting the
// file mid-way).
func (w *wal) truncateTo(off int64) error {
	if err := w.f.Truncate(off); err != nil {
		return fmt.Errorf("store: truncate wal: %w", err)
	}
	if _, err := w.f.Seek(off, 0); err != nil {
		return fmt.Errorf("store: seek wal: %w", err)
	}
	w.off = off
	return nil
}

// applyReplayed applies one WAL record during recovery through the
// same mutation path live commits use, then re-verifies the digest the
// record promised.
func (s *Store) applyReplayed(rec record) error {
	switch rec.Type {
	case "create":
		if _, ok := s.docs[rec.Doc]; ok {
			return fmt.Errorf("store: replay create %q: already exists", rec.Doc)
		}
		t, err := xmltree.ParseWithLimits(strings.NewReader(rec.XML), s.opts.Limits)
		if err != nil {
			return err
		}
		digest := t.Digest()
		if digest != rec.Digest {
			return fmt.Errorf("store: replay create %q: digest mismatch", rec.Doc)
		}
		s.docs[rec.Doc] = &doc{id: rec.Doc, tree: t, lsn: rec.LSN, digest: digest}
		return nil
	case "update":
		d, ok := s.docs[rec.Doc]
		if !ok {
			return fmt.Errorf("store: replay update %q: no such doc", rec.Doc)
		}
		u, _, err := s.parseUpdate(Op{Kind: rec.Kind, Pattern: rec.Pattern, X: rec.X})
		if err != nil {
			return err
		}
		newTree, _, digest, err := applyUpdate(d, u)
		if err != nil {
			return err
		}
		if digest != rec.Digest {
			return fmt.Errorf("store: replay update %q lsn %d: digest mismatch (stored %.12s, replayed %.12s)",
				rec.Doc, rec.LSN, rec.Digest, digest)
		}
		s.commitUpdate(d, rec.LSN, rec.Kind, u, newTree, digest)
		return nil
	case "drop":
		if _, ok := s.docs[rec.Doc]; !ok {
			return fmt.Errorf("store: replay drop %q: no such doc", rec.Doc)
		}
		delete(s.docs, rec.Doc)
		return nil
	}
	return fmt.Errorf("store: replay: unknown record type %q", rec.Type)
}

// parseLimited parses an XML document under the store's configured
// limits.
func (s *Store) parseLimited(xml string) (*xmltree.Tree, error) {
	return xmltree.ParseWithLimits(strings.NewReader(xml), s.opts.Limits)
}

// parseUpdate compiles an Op into an executable update. The returned
// string is the canonical fragment serialization stored in the WAL.
func (s *Store) parseUpdate(op Op) (ops.Update, string, error) {
	p, err := xpath.Parse(op.Pattern)
	if err != nil {
		return nil, "", fmt.Errorf("store: pattern: %w", err)
	}
	switch op.Kind {
	case "insert":
		xs := op.X
		if xs == "" {
			xs = "<new/>"
		}
		x, err := xmltree.ParseWithLimits(strings.NewReader(xs), s.opts.Limits)
		if err != nil {
			return nil, "", fmt.Errorf("store: x: %w", err)
		}
		if l, bad := x.UnsafeLabel(); bad {
			return nil, "", fmt.Errorf("store: x: element label %q: %w", l, ErrUnsafeLabel)
		}
		return ops.Insert{P: p, X: x}, x.XML(), nil
	case "delete":
		d := ops.Delete{P: p}
		if err := d.Validate(); err != nil {
			return nil, "", err
		}
		return d, "", nil
	}
	return nil, "", fmt.Errorf("store: unknown update kind %q", op.Kind)
}

// applyUpdate runs u on an identity-preserving clone of d's tree and
// returns the new tree, the application points, and the new digest.
// The document itself is untouched until commitUpdate swaps the clone
// in — so a failed append never leaves a half-applied document.
func applyUpdate(d *doc, u ops.Update) (*xmltree.Tree, int, string, error) {
	clone := d.tree.Clone()
	clone.ClearModified()
	points, err := u.Apply(clone)
	if err != nil {
		return nil, 0, "", err
	}
	return clone, len(points), clone.Digest(), nil
}

// commitUpdate publishes an applied update: the old tree becomes the
// newest admission-window entry (it is immutable from here on), the
// clone becomes current, and the LSNs advance.
func (s *Store) commitUpdate(d *doc, lsn uint64, kind string, u ops.Update, newTree *xmltree.Tree, digest string) {
	d.hist = append(d.hist, histEntry{lsn: lsn, preLSN: d.lsn, kind: kind, upd: u, pre: d.tree})
	if excess := len(d.hist) - s.opts.HistoryWindow; excess > 0 {
		d.hist = append([]histEntry(nil), d.hist[excess:]...)
	}
	d.tree = newTree
	d.lsn = lsn
	d.digest = digest
	if lsn > s.lsn {
		s.advanceLSNLocked(lsn)
	}
}

// admit runs the optimistic admission check: every update committed
// after base must be invisible to a read (under op.Sem) or commute
// with an update (value semantics, the Section 6 notion). The checks
// are concrete witness checks on the retained pre-states — polynomial
// (Lemma 1), not the NP-hard existential search.
func (s *Store) admit(d *doc, op Op, rd *ops.Read, upd ops.Update) error {
	base := op.BaseLSN
	if base == 0 || base >= d.lsn {
		if base > s.lsn {
			return fmt.Errorf("store: doc %q: base lsn %d beyond store lsn %d: %w", d.id, base, s.lsn, ErrFutureBase)
		}
		return nil
	}
	if len(d.hist) == 0 || d.hist[0].preLSN > base {
		return fmt.Errorf("store: doc %q: base lsn %d: %w", d.id, base, ErrStaleBase)
	}
	for _, e := range d.hist {
		if e.lsn <= base {
			continue
		}
		if rd != nil {
			fired, err := ops.FiredSemantics(*rd, e.upd, e.pre)
			if err != nil {
				return err
			}
			if !semFired(fired, op.Sem) {
				continue
			}
			names := make([]string, len(fired))
			for i, f := range fired {
				names[i] = f.String()
			}
			s.m.Add("store.conflict_rejections", 1)
			return &ConflictError{
				Doc: d.id, Op: "read", Sem: op.Sem, Fired: names,
				BaseLSN: base, WithLSN: e.lsn, WithKind: e.kind,
				Detail: fmt.Sprintf("READ %s returns a different result across the %s applied at the pre-state of lsn %d", op.Pattern, e.kind, e.lsn),
			}
		}
		noncommute, err := ops.CommuteWitness(upd, e.upd, e.pre)
		if err != nil {
			return err
		}
		if noncommute {
			s.m.Add("store.conflict_rejections", 1)
			return &ConflictError{
				Doc: d.id, Op: op.Kind, Sem: ops.ValueSemantics, Fired: []string{ops.ValueSemantics.String()},
				BaseLSN: base, WithLSN: e.lsn, WithKind: e.kind,
				Detail: fmt.Sprintf("the two application orders yield non-isomorphic documents on the pre-state of lsn %d", e.lsn),
			}
		}
	}
	return nil
}

// semFired reports whether the admission semantics is among the fired
// ones.
func semFired(fired []ops.Semantics, sem ops.Semantics) bool {
	for _, f := range fired {
		if f == sem {
			return true
		}
	}
	return false
}

// Create registers a new document under id. The WAL record stores the
// canonical serialization, so replay is deterministic regardless of
// how the input was formatted.
func (s *Store) Create(id, xml string) (Result, error) {
	return s.CreateCtx(context.Background(), id, xml)
}

// CreateCtx is Create carrying a request context: a span in ctx (see
// telemetry/span) receives the store.create sub-tree, including the
// WAL append and fsync.
func (s *Store) CreateCtx(ctx context.Context, id, xml string) (Result, error) {
	sp := span.FromContext(ctx).Child("store.create")
	if sp != nil {
		sp.Set("doc", id)
		defer sp.End()
	}
	if err := validateID(id); err != nil {
		sp.Fail(err)
		return Result{}, err
	}
	t, err := xmltree.ParseWithLimits(strings.NewReader(xml), s.opts.Limits)
	if err != nil {
		return Result{}, err
	}
	if l, bad := t.UnsafeLabel(); bad {
		return Result{}, fmt.Errorf("store: doc %q: element label %q: %w", id, l, ErrUnsafeLabel)
	}
	digest := t.Digest()

	s.mu.Lock()
	locked := true
	defer s.guardCommit(&locked)
	unlock := func() { locked = false; s.mu.Unlock() }
	if s.closed {
		unlock()
		return Result{}, ErrClosed
	}
	if _, ok := s.docs[id]; ok {
		unlock()
		return Result{}, fmt.Errorf("store: doc %q: %w", id, ErrExists)
	}
	lsn := s.lsn + 1
	ack, err := s.append(record{LSN: lsn, Type: "create", Doc: id, XML: t.XML(), Digest: digest}, sp)
	if err != nil {
		unlock()
		sp.Fail(err)
		return Result{}, err
	}
	s.docs[id] = &doc{id: id, tree: t, lsn: lsn, digest: digest}
	s.advanceLSNLocked(lsn)
	s.m.Gauge("store.docs").Set(int64(len(s.docs)))
	s.maybeSnapshotLocked()
	unlock()

	if err := s.awaitAck(ack, sp); err != nil {
		return Result{}, err
	}
	sp.Set("lsn", lsn)
	return Result{Doc: id, LSN: lsn, Digest: digest}, nil
}

// Get returns the current state of a document.
func (s *Store) Get(id string) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Info{}, ErrClosed
	}
	d, ok := s.docs[id]
	if !ok {
		return Info{}, fmt.Errorf("store: doc %q: %w", id, ErrNotFound)
	}
	return Info{Doc: id, LSN: d.lsn, Digest: d.digest, XML: d.tree.XML(), Size: d.tree.Size()}, nil
}

// Drop removes a document. The removal is itself a durable WAL record.
func (s *Store) Drop(id string) (Result, error) {
	return s.DropCtx(context.Background(), id)
}

// DropCtx is Drop carrying a request context for span propagation.
func (s *Store) DropCtx(ctx context.Context, id string) (Result, error) {
	sp := span.FromContext(ctx).Child("store.drop")
	if sp != nil {
		sp.Set("doc", id)
		defer sp.End()
	}
	s.mu.Lock()
	locked := true
	defer s.guardCommit(&locked)
	unlock := func() { locked = false; s.mu.Unlock() }
	if s.closed {
		unlock()
		return Result{}, ErrClosed
	}
	if _, ok := s.docs[id]; !ok {
		unlock()
		return Result{}, fmt.Errorf("store: doc %q: %w", id, ErrNotFound)
	}
	lsn := s.lsn + 1
	ack, err := s.append(record{LSN: lsn, Type: "drop", Doc: id}, sp)
	if err != nil {
		unlock()
		sp.Fail(err)
		return Result{}, err
	}
	delete(s.docs, id)
	s.advanceLSNLocked(lsn)
	s.m.Gauge("store.docs").Set(int64(len(s.docs)))
	s.maybeSnapshotLocked()
	unlock()

	if err := s.awaitAck(ack, sp); err != nil {
		return Result{}, err
	}
	sp.Set("lsn", lsn)
	return Result{Doc: id, LSN: lsn}, nil
}

// Submit evaluates a READ or durably applies an INSERT/DELETE against
// a document, running the optimistic admission check when the Op
// carries a BaseLSN. Rejections are *ConflictError (or ErrStaleBase /
// ErrFutureBase); an acknowledged update is durable per the store's
// fsync policy.
func (s *Store) Submit(id string, op Op) (Result, error) {
	return s.SubmitCtx(context.Background(), id, op)
}

// SubmitCtx is Submit carrying a request context: a span in ctx
// receives the operation's forensic sub-tree — the admission check
// (BaseLSN window and, on rejection, the fired semantics), the apply,
// the WAL append/fsync, and the group-commit ack wait.
func (s *Store) SubmitCtx(ctx context.Context, id string, op Op) (Result, error) {
	switch op.Kind {
	case "read":
		return s.submitRead(ctx, id, op)
	case "insert", "delete":
		return s.submitUpdate(ctx, id, op)
	}
	return Result{}, fmt.Errorf("store: unknown op kind %q (want read, insert, or delete)", op.Kind)
}

func (s *Store) submitRead(ctx context.Context, id string, op Op) (Result, error) {
	sp := span.FromContext(ctx).Child("store.read")
	if sp != nil {
		sp.Set("doc", id)
		sp.Set("base_lsn", op.BaseLSN)
		defer sp.End()
	}
	p, err := xpath.Parse(op.Pattern)
	if err != nil {
		err = fmt.Errorf("store: pattern: %w", err)
		sp.Fail(err)
		return Result{}, err
	}
	rd := ops.Read{P: p}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		sp.Fail(ErrClosed)
		return Result{}, ErrClosed
	}
	d, ok := s.docs[id]
	if !ok {
		err := fmt.Errorf("store: doc %q: %w", id, ErrNotFound)
		sp.Fail(err)
		return Result{}, err
	}
	if err := s.admitSpanned(sp, d, op, &rd, nil); err != nil {
		return Result{}, err
	}
	nodes := xmltree.SortByID(rd.Eval(d.tree))
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = d.tree.CloneSubtree(n).XML()
	}
	s.m.Add("store.reads", 1)
	sp.Set("nodes", len(out))
	return Result{Doc: id, LSN: d.lsn, Digest: d.digest, Nodes: out}, nil
}

func (s *Store) submitUpdate(ctx context.Context, id string, op Op) (Result, error) {
	sp := span.FromContext(ctx).Child("store.update")
	if sp != nil {
		sp.Set("doc", id)
		sp.Set("kind", op.Kind)
		sp.Set("base_lsn", op.BaseLSN)
		defer sp.End()
	}
	u, canonX, err := s.parseUpdate(op)
	if err != nil {
		sp.Fail(err)
		return Result{}, err
	}

	s.mu.Lock()
	locked := true
	defer s.guardCommit(&locked)
	unlock := func() { locked = false; s.mu.Unlock() }
	if s.closed {
		unlock()
		sp.Fail(ErrClosed)
		return Result{}, ErrClosed
	}
	d, ok := s.docs[id]
	if !ok {
		unlock()
		err := fmt.Errorf("store: doc %q: %w", id, ErrNotFound)
		sp.Fail(err)
		return Result{}, err
	}
	if err := s.admitSpanned(sp, d, op, nil, u); err != nil {
		unlock()
		return Result{}, err
	}
	asp := sp.Child("store.apply")
	newTree, points, digest, err := applyUpdate(d, u)
	if err != nil {
		unlock()
		asp.Fail(err)
		asp.End()
		sp.Fail(err)
		return Result{}, err
	}
	if asp != nil {
		asp.Set("points", points)
		asp.End()
	}
	lsn := s.lsn + 1
	ack, err := s.append(record{
		LSN: lsn, Type: "update", Doc: id,
		Kind: op.Kind, Pattern: op.Pattern, X: canonX, Digest: digest,
	}, sp)
	if err != nil {
		unlock()
		sp.Fail(err)
		return Result{}, err
	}
	s.commitUpdate(d, lsn, op.Kind, u, newTree, digest)
	s.m.Add("store.updates", 1)
	s.maybeSnapshotLocked()
	unlock()

	if err := s.awaitAck(ack, sp); err != nil {
		return Result{}, err
	}
	sp.Set("lsn", lsn)
	return Result{Doc: id, LSN: lsn, Digest: digest, Points: points}, nil
}

// admitSpanned wraps the admission check in a "store.admit" span
// carrying the BaseLSN window it scheduled against and — on a conflict
// rejection — the fired semantics and the committed update the
// operation collided with: the forensic payload of a 409.
func (s *Store) admitSpanned(parent *span.Span, d *doc, op Op, rd *ops.Read, upd ops.Update) error {
	asp := parent.Child("store.admit")
	if asp != nil {
		asp.Set("base_lsn", op.BaseLSN)
		asp.Set("doc_lsn", d.lsn)
		asp.Set("window", len(d.hist))
		// Admission checks run against concrete committed pre-states
		// (Lemma 1 witness checks), so the existential DetectorCache
		// never applies here.
		asp.Set("cache", "bypass")
	}
	err := s.admit(d, op, rd, upd)
	if asp != nil {
		if err != nil {
			var ce *ConflictError
			if errors.As(err, &ce) {
				asp.Set("conflict", true)
				asp.Set("sem", ce.Sem.String())
				asp.Set("fired", strings.Join(ce.Fired, ","))
				asp.Set("with_lsn", ce.WithLSN)
				asp.Set("with_kind", ce.WithKind)
				asp.Flag("conflict")
			}
			asp.Fail(err)
		}
		asp.End()
	}
	return err
}

// append encodes and appends one record under a "store.wal.append"
// span (a child of parent); the caller holds s.mu.
func (s *Store) append(rec record, parent *span.Span) (func() error, error) {
	payload, err := encodeRecord(rec)
	if err != nil {
		return nil, err
	}
	wsp := parent.Child("store.wal.append")
	if wsp != nil {
		wsp.Set("lsn", rec.LSN)
		wsp.Set("type", rec.Type)
		wsp.Set("bytes", len(payload))
	}
	ack, err := s.w.Append(payload, wsp)
	wsp.Fail(err)
	wsp.End()
	if err == nil {
		// Append success means the caller commits unconditionally, so
		// the frame is retained for replication shipping right here.
		s.pushReplFrame(rec.LSN, payload)
	}
	return ack, err
}

// guardCommit is deferred by mutating operations while they hold s.mu.
// A panic mid-commit (a crash drill via faultinject, or a real bug
// mid-append) may leave the WAL offset inconsistent with the file, so
// the store fail-stops: it is poisoned (marked closed) before the lock
// is released and the panic rethrown. A containment layer above can
// keep the process alive, but the store refuses further operations
// until a restart re-runs recovery over what actually hit the disk.
func (s *Store) guardCommit(lockedp *bool) {
	if r := recover(); r != nil {
		if *lockedp {
			s.closed = true
			s.mu.Unlock()
		}
		panic(r)
	}
}

// awaitAck waits out a group-commit acknowledgment, if any, under a
// "store.ack" span (the wait for the covering group fsync). A failed
// ack means a commit already published to in-memory state was reported
// lost to its client, so the store fail-stops — the same rule the panic
// path enforces: state the store disclaimed is never served. A restart
// re-runs recovery over what actually reached the disk.
func (s *Store) awaitAck(ack func() error, parent *span.Span) error {
	if ack == nil {
		return nil
	}
	ksp := parent.Child("store.ack")
	err := ack()
	ksp.Fail(err)
	ksp.End()
	if err != nil {
		s.mu.Lock()
		if !s.closed {
			s.closed = true
			s.w.Close()
		}
		s.mu.Unlock()
	}
	return err
}

// maybeSnapshotLocked auto-snapshots when the configured append count
// has accumulated. Failures degrade (the WAL still has everything) and
// are counted, never surfaced to the committing client.
func (s *Store) maybeSnapshotLocked() {
	s.sinceSnap++
	if s.opts.SnapshotEvery <= 0 || s.sinceSnap < s.opts.SnapshotEvery {
		return
	}
	if _, err := s.snapshotLocked(); err != nil {
		s.m.Add("store.snapshot_errors", 1)
	}
}

// Snapshot durably captures the whole store at its current LSN and
// truncates the WAL. Returns the snapshot LSN.
func (s *Store) Snapshot() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() (uint64, error) {
	snap := snapshot{LSN: s.lsn}
	for _, id := range sortedIDs(s.docs) {
		d := s.docs[id]
		snap.Docs = append(snap.Docs, snapDoc{ID: id, LSN: d.lsn, XML: d.tree.XML(), Digest: d.digest})
	}
	if _, err := writeSnapshot(s.dir, snap); err != nil {
		return 0, err
	}
	// The snapshot now durably carries every record's effect: the WAL
	// can restart empty, and pending group commits are satisfied.
	if err := s.w.reset(); err != nil {
		// Leftover records are harmless — recovery skips LSNs the
		// snapshot already covers — so a failed truncation only wastes
		// space.
		s.m.Add("store.snapshot_errors", 1)
	}
	pruneSnapshots(s.dir, s.opts.KeepSnapshots, snap.LSN, s.m)
	s.sinceSnap = 0
	s.m.Add("store.snapshots", 1)
	return snap.LSN, nil
}

// LSN returns the store-wide LSN of the latest committed record.
func (s *Store) LSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lsn
}

// advanceLSNLocked publishes a new store-wide LSN and wakes every
// WaitLSN waiter (the broadcast channel is closed and dropped; the
// next waiter allocates a fresh one). The caller holds s.mu.
func (s *Store) advanceLSNLocked(lsn uint64) {
	s.lsn = lsn
	if s.lsnCh != nil {
		close(s.lsnCh)
		s.lsnCh = nil
	}
}

// WaitLSN blocks until the store's LSN reaches min, reporting whether
// it did. It returns early (false) when ctx ends, the wait budget
// elapses, or the store closes. Waiters park on a commit-notification
// channel instead of polling, so many concurrent read-your-writes
// gates cost nothing while the replica catches up.
func (s *Store) WaitLSN(ctx context.Context, min uint64, wait time.Duration) bool {
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		s.mu.Lock()
		if s.lsn >= min {
			s.mu.Unlock()
			return true
		}
		if s.closed {
			s.mu.Unlock()
			return false
		}
		if s.lsnCh == nil {
			s.lsnCh = make(chan struct{})
		}
		ch := s.lsnCh
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return false
		case <-timer.C:
			return s.LSN() >= min
		}
	}
}

// Docs lists the registered document ids, sorted.
func (s *Store) Docs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sortedIDs(s.docs)
}

// Close flushes and closes the WAL. Further operations fail with
// ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.lsnCh != nil {
		// Wake parked WaitLSN waiters; they observe closed and give up.
		close(s.lsnCh)
		s.lsnCh = nil
	}
	return s.w.Close()
}

func sortedIDs(docs map[string]*doc) []string {
	ids := make([]string, 0, len(docs))
	for id := range docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// validateID keeps document ids path- and log-safe.
func validateID(id string) error {
	if id == "" || len(id) > 128 {
		return fmt.Errorf("store: doc id must be 1-128 characters")
	}
	for _, r := range id {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
			r == '-' || r == '_' || r == '.' {
			continue
		}
		return fmt.Errorf("store: doc id %q: only letters, digits, '-', '_', '.' are allowed", id)
	}
	return nil
}

func ensureDir(dir string) error {
	if dir == "" {
		return fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: create dir: %w", err)
	}
	return nil
}
