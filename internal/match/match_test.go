package match

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xmlconflict/internal/pattern"
	"xmlconflict/internal/xmltree"
	"xmlconflict/internal/xpath"
)

// figure2Tree builds the tree of Figure 2: a root with children b and c,
// where b has children d and e, and e has a child f.
func figure2Tree() *xmltree.Tree {
	return xmltree.MustParse("<a><b><d/><e><f/></e></b><c/></a>")
}

func labelsOf(ns []*xmltree.Node) []string {
	var out []string
	for _, n := range ns {
		out = append(out, n.Label())
	}
	return out
}

func TestFigure2Embedding(t *testing.T) {
	// The paper's Figure 2: pattern a[.//c]/b[d][*//f] embeds into the tree
	// with output node b.
	p := xpath.MustParse("a[.//c]/b[d][*//f]")
	tr := figure2Tree()
	res := Eval(p, tr)
	if len(res) != 1 || res[0].Label() != "b" {
		t.Fatalf("Eval = %v, want the b node", labelsOf(res))
	}
}

func TestEvalRootOnly(t *testing.T) {
	tr := xmltree.MustParse("<a><b/></a>")
	res := Eval(xpath.MustParse("a"), tr)
	if len(res) != 1 || res[0] != tr.Root() {
		t.Fatalf("Eval(/a) = %v", labelsOf(res))
	}
	if got := Eval(xpath.MustParse("b"), tr); len(got) != 0 {
		t.Fatalf("root-preservation violated: %v", labelsOf(got))
	}
}

func TestEvalDescendant(t *testing.T) {
	tr := xmltree.MustParse("<r><a><a><b/></a></a><b/></r>")
	res := Eval(xpath.MustParse("//b"), tr)
	if len(res) != 2 {
		t.Fatalf("//b returned %d nodes, want 2", len(res))
	}
	res = Eval(xpath.MustParse("//a//b"), tr)
	if len(res) != 1 {
		t.Fatalf("//a//b returned %d nodes, want 1", len(res))
	}
	res = Eval(xpath.MustParse("//a/a"), tr)
	if len(res) != 1 {
		t.Fatalf("//a/a returned %d nodes, want 1", len(res))
	}
}

func TestEvalWildcard(t *testing.T) {
	tr := xmltree.MustParse("<r><x><A/></x><y><A/></y><A/></r>")
	res := Eval(xpath.MustParse("/*/A"), tr)
	if len(res) != 1 {
		// Only the direct A child of the root matches /*/A? No: /*/A means
		// root=*, child A. The root's A child matches; the grandchildren
		// do not (they are at depth 2).
		t.Fatalf("/*/A returned %d nodes, want 1", len(res))
	}
	res = Eval(xpath.MustParse("/*/*/A"), tr)
	if len(res) != 2 {
		t.Fatalf("/*/*/A returned %d nodes, want 2", len(res))
	}
}

func TestEvalPredicateFilters(t *testing.T) {
	tr := xmltree.MustParse("<inv><book><q/></book><book/></inv>")
	res := Eval(xpath.MustParse("inv/book[q]"), tr)
	if len(res) != 1 {
		t.Fatalf("book[q] returned %d, want 1", len(res))
	}
	res = Eval(xpath.MustParse("inv/book"), tr)
	if len(res) != 2 {
		t.Fatalf("book returned %d, want 2", len(res))
	}
}

func TestEvalOutputAboveLeaf(t *testing.T) {
	// Output node with descendants in the pattern: //book[.//q] selects
	// book nodes, constrained below.
	tr := xmltree.MustParse("<inv><book><info><q/></info></book><book><x/></book></inv>")
	p := xpath.MustParse("//book[.//q]")
	res := Eval(p, tr)
	if len(res) != 1 || res[0].Label() != "book" {
		t.Fatalf("//book[.//q] = %v", labelsOf(res))
	}
}

func TestEmbedsAtAndAnywhere(t *testing.T) {
	x := xmltree.MustParse("<x><c><d/></c></x>")
	cd := xpath.MustParse("c/d")
	if EmbedsAt(cd, x, x.Root()) {
		t.Fatalf("c/d must not embed at the x root (label mismatch)")
	}
	if !EmbedsAnywhere(cd, x) {
		t.Fatalf("c/d must embed somewhere in x")
	}
	xc := xpath.MustParse("x/c")
	if !EmbedsAt(xc, x, x.Root()) {
		t.Fatalf("x/c must embed at the root")
	}
	if !EmbedsAnywhere(xpath.MustParse("d"), x) {
		t.Fatalf("single-node d must embed anywhere")
	}
	if EmbedsAnywhere(xpath.MustParse("q"), x) {
		t.Fatalf("absent label must not embed")
	}
}

func TestModelAlwaysEmbeds(t *testing.T) {
	// Section 2.3: every pattern embeds into its model.
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := pattern.Random(rng, pattern.RandomConfig{
			Size: int(size%12) + 1, Labels: []string{"a", "b", "c"},
			PWildcard: 0.3, PDescendant: 0.4, PBranch: 0.4,
		})
		m, out := p.Model("zz")
		res := Eval(p, m)
		found := false
		for _, n := range res {
			if n == out {
				found = true
			}
		}
		return Embeds(p, m) && found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalMatchesNaiveOracle(t *testing.T) {
	// The two-pass evaluator agrees with full embedding enumeration on
	// random pattern/tree pairs.
	f := func(pseed, tseed int64, psize, tsize uint8) bool {
		prng := rand.New(rand.NewSource(pseed))
		trng := rand.New(rand.NewSource(tseed))
		p := pattern.Random(prng, pattern.RandomConfig{
			Size: int(psize%6) + 1, Labels: []string{"a", "b"},
			PWildcard: 0.3, PDescendant: 0.4, PBranch: 0.5,
		})
		tr := xmltree.Random(trng, xmltree.RandomConfig{
			Size: int(tsize%12) + 1, Labels: []string{"a", "b", "c"},
		})
		fast := Eval(p, tr)
		slow := EvalNaive(p, tr)
		return xmltree.SameNodeSet(fast, slow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAllEmbeddingsAreValid(t *testing.T) {
	f := func(pseed, tseed int64) bool {
		prng := rand.New(rand.NewSource(pseed))
		trng := rand.New(rand.NewSource(tseed))
		p := pattern.Random(prng, pattern.RandomConfig{
			Size: 4, Labels: []string{"a", "b"},
			PWildcard: 0.3, PDescendant: 0.5, PBranch: 0.4,
		})
		tr := xmltree.Random(trng, xmltree.RandomConfig{
			Size: 10, Labels: []string{"a", "b"},
		})
		valid := true
		AllEmbeddings(p, tr, func(e Embedding) bool {
			if !e.Valid(p, tr) {
				valid = false
				return false
			}
			return true
		})
		return valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestFindEmbeddingTargets(t *testing.T) {
	tr := xmltree.MustParse("<r><a><b/></a><a><b/><c/></a></r>")
	p := xpath.MustParse("r/a[c]/b")
	res := Eval(p, tr)
	if len(res) != 1 {
		t.Fatalf("setup: %v", labelsOf(res))
	}
	e := FindEmbedding(p, tr, res[0])
	if e == nil || !e.Valid(p, tr) || e[p.Output()] != res[0] {
		t.Fatalf("FindEmbedding failed")
	}
	// A non-result target yields nil.
	other := Eval(xpath.MustParse("r/a[b]/b"), tr)
	for _, n := range other {
		if n != res[0] {
			if FindEmbedding(p, tr, n) != nil {
				t.Fatalf("embedding found for non-result target")
			}
		}
	}
}

func TestFindEmbeddingAtMatchesOracle(t *testing.T) {
	// FindEmbeddingAt (polynomial) finds an embedding exactly when the
	// target is in Eval's result, and the embedding is valid.
	f := func(pseed, tseed int64, psize, tsize uint8) bool {
		prng := rand.New(rand.NewSource(pseed))
		trng := rand.New(rand.NewSource(tseed))
		p := pattern.Random(prng, pattern.RandomConfig{
			Size: int(psize%6) + 1, Labels: []string{"a", "b"},
			PWildcard: 0.3, PDescendant: 0.4, PBranch: 0.5,
		})
		tr := xmltree.Random(trng, xmltree.RandomConfig{
			Size: int(tsize%12) + 1, Labels: []string{"a", "b", "c"},
		})
		resSet := map[*xmltree.Node]bool{}
		for _, n := range Eval(p, tr) {
			resSet[n] = true
		}
		for _, n := range tr.Nodes() {
			e := FindEmbeddingAt(p, tr, n)
			if resSet[n] {
				if e == nil || !e.Valid(p, tr) || e[p.Output()] != n {
					return false
				}
			} else if e != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalLargeTreeSanity(t *testing.T) {
	// A deep chain exercises the descendant propagation.
	tr := xmltree.New("a")
	n := tr.Root()
	for i := 0; i < 500; i++ {
		n = tr.AddChild(n, "a")
	}
	tr.AddChild(n, "b")
	res := Eval(xpath.MustParse("//b"), tr)
	if len(res) != 1 {
		t.Fatalf("//b on chain: %d results", len(res))
	}
	res = Eval(xpath.MustParse("//a"), tr)
	if len(res) != 500 {
		t.Fatalf("//a on chain: %d results, want 500", len(res))
	}
	res = Eval(xpath.MustParse("//a[b]"), tr)
	if len(res) != 1 {
		t.Fatalf("//a[b] on chain: %d results, want 1", len(res))
	}
}
