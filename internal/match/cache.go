package match

import (
	"sync"
	"sync/atomic"

	"xmlconflict/internal/pattern"
)

// Cache memoizes compiled Evaluators by pattern identity, for callers
// that evaluate a fixed set of patterns against many trees (the witness
// searches, the program analyzer). It tracks hit/miss counts for
// telemetry.
//
// The cache is keyed by pointer and does not observe pattern mutation:
// a caller must not mutate a pattern (AddChild, SetOutput, Attach)
// while a Cache holding it is in use. The detection engine creates one
// Cache per search, within which patterns are immutable, so the
// restriction is structural there. A Cache is safe for concurrent use.
type Cache struct {
	mu           sync.RWMutex
	ev           map[*pattern.Pattern]*Evaluator
	max          int // > 0: flush the map when it would exceed this
	hits, misses atomic.Int64
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{ev: map[*pattern.Pattern]*Evaluator{}} }

// NewCacheBounded returns a cache that holds at most maxEntries compiled
// patterns; inserting beyond the bound flushes the whole map (recompiling
// is cheap, and pointer-keyed entries cannot be aged individually without
// bookkeeping the hot path would pay for). maxEntries <= 0 means
// unbounded, i.e. NewCache. Process-lifetime holders (the DetectorCache)
// use this so distinct patterns cannot grow the cache without limit.
func NewCacheBounded(maxEntries int) *Cache {
	c := NewCache()
	c.max = maxEntries
	return c
}

// Get returns the compiled evaluator for p, compiling it on first use.
func (c *Cache) Get(p *pattern.Pattern) *Evaluator {
	c.mu.RLock()
	e := c.ev[p]
	c.mu.RUnlock()
	if e != nil {
		c.hits.Add(1)
		return e
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e = c.ev[p]; e != nil {
		c.hits.Add(1)
		return e
	}
	c.misses.Add(1)
	if c.max > 0 && len(c.ev) >= c.max {
		c.ev = map[*pattern.Pattern]*Evaluator{}
	}
	e = Compile(p)
	c.ev[p] = e
	return e
}

// Counts returns the accumulated hit and miss counts.
func (c *Cache) Counts() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
