package match

import (
	"sync"
	"sync/atomic"

	"xmlconflict/internal/pattern"
)

// Cache memoizes compiled Evaluators by pattern identity, for callers
// that evaluate a fixed set of patterns against many trees (the witness
// searches, the program analyzer). It tracks hit/miss counts for
// telemetry.
//
// The cache is keyed by pointer and does not observe pattern mutation:
// a caller must not mutate a pattern (AddChild, SetOutput, Attach)
// while a Cache holding it is in use. The detection engine creates one
// Cache per search, within which patterns are immutable, so the
// restriction is structural there. A Cache is safe for concurrent use.
type Cache struct {
	mu           sync.RWMutex
	ev           map[*pattern.Pattern]*Evaluator
	hits, misses atomic.Int64
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{ev: map[*pattern.Pattern]*Evaluator{}} }

// Get returns the compiled evaluator for p, compiling it on first use.
func (c *Cache) Get(p *pattern.Pattern) *Evaluator {
	c.mu.RLock()
	e := c.ev[p]
	c.mu.RUnlock()
	if e != nil {
		c.hits.Add(1)
		return e
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e = c.ev[p]; e != nil {
		c.hits.Add(1)
		return e
	}
	c.misses.Add(1)
	e = Compile(p)
	c.ev[p] = e
	return e
}

// Counts returns the accumulated hit and miss counts.
func (c *Cache) Counts() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
