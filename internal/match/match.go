// Package match implements the embedding semantics of Section 2.3 of
// "Conflicting XML Updates": evaluation of a tree pattern p on a tree t,
// [[p]](t), is the set of images of the output node Ø(p) under all
// embeddings of p into t.
//
// The evaluator runs in O(|t|·|p|) time using two linear passes (a
// bottom-up subtree-satisfiability pass followed by a top-down context-
// feasibility pass), in the spirit of the Core XPath algorithm of Gottlob,
// Koch & Pichler that the paper cites for its polynomial-time operation
// bounds. A naive embedding enumerator (AllEmbeddings) serves as the
// specification oracle in tests.
package match

import (
	"xmlconflict/internal/pattern"
	"xmlconflict/internal/xmltree"
)

// evalState carries the per-(tree node, pattern node) bit tables for one
// evaluation. Pattern nodes are indexed by preorder position.
type evalState struct {
	p      *pattern.Pattern
	pnodes []*pattern.Node
	pindex map[*pattern.Node]int
	m      int

	// sat[v][q]: the subpattern rooted at q embeds into the subtree rooted
	// at v with q ↦ v.
	sat map[*xmltree.Node][]bool
	// satSub[v][q]: some node in the subtree rooted at v (v included)
	// satisfies sat[·][q].
	satSub map[*xmltree.Node][]bool
}

func newEvalState(p *pattern.Pattern) *evalState {
	s := &evalState{
		p:      p,
		pnodes: p.Nodes(),
		pindex: map[*pattern.Node]int{},
		sat:    map[*xmltree.Node][]bool{},
		satSub: map[*xmltree.Node][]bool{},
	}
	s.m = len(s.pnodes)
	for i, q := range s.pnodes {
		s.pindex[q] = i
	}
	return s
}

func labelOK(q *pattern.Node, v *xmltree.Node) bool {
	return q.IsWildcard() || q.Label() == v.Label()
}

// computeSat fills sat and satSub for the subtree rooted at v, bottom-up.
func (s *evalState) computeSat(v *xmltree.Node) {
	for _, c := range v.Children() {
		s.computeSat(c)
	}
	sat := make([]bool, s.m)
	sub := make([]bool, s.m)
	// Pattern nodes in reverse preorder: children before parents.
	for qi := s.m - 1; qi >= 0; qi-- {
		q := s.pnodes[qi]
		ok := labelOK(q, v)
		if ok {
			for _, qc := range q.Children() {
				ci := s.pindex[qc]
				found := false
				for _, tc := range v.Children() {
					if qc.Axis() == pattern.Child {
						if s.sat[tc][ci] {
							found = true
							break
						}
					} else if s.satSub[tc][ci] {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
		}
		sat[qi] = ok
		sub[qi] = ok
		if !sub[qi] {
			for _, tc := range v.Children() {
				if s.satSub[tc][qi] {
					sub[qi] = true
					break
				}
			}
		}
	}
	s.sat[v] = sat
	s.satSub[v] = sub
}

// Eval returns [[p]](t): the set of nodes v of t such that some embedding
// of p into t maps Ø(p) to v. The result is sorted by node identity.
func Eval(p *pattern.Pattern, t *xmltree.Tree) []*xmltree.Node {
	s := newEvalState(p)
	s.computeSat(t.Root())
	if !s.sat[t.Root()][0] {
		return nil
	}
	// Top-down feasibility: feas[v][q] means a full embedding exists that
	// maps q to v. Because embeddings of sibling subpatterns are
	// independent, feas[v][q] = sat[v][q] ∧ (q is the root ∧ v is the root,
	// or the edge constraint to some feasible image of q's parent holds).
	feas := map[*xmltree.Node][]bool{}
	// ancFeas[v][q]: some proper ancestor u of v has feas[u][q].
	var down func(v *xmltree.Node, anc []bool)
	outIdx := s.pindex[p.Output()]
	var result []*xmltree.Node
	down = func(v *xmltree.Node, anc []bool) {
		f := make([]bool, s.m)
		sat := s.sat[v]
		for qi, q := range s.pnodes {
			if !sat[qi] {
				continue
			}
			if q.Parent() == nil {
				f[qi] = v == t.Root()
				continue
			}
			pi := s.pindex[q.Parent()]
			if q.Axis() == pattern.Child {
				if pv := v.Parent(); pv != nil && feas[pv][pi] {
					f[qi] = true
				}
			} else if anc[pi] {
				f[qi] = true
			}
		}
		feas[v] = f
		if f[outIdx] {
			result = append(result, v)
		}
		if len(v.Children()) > 0 {
			childAnc := make([]bool, s.m)
			for qi := range childAnc {
				childAnc[qi] = anc[qi] || f[qi]
			}
			for _, c := range v.Children() {
				down(c, childAnc)
			}
		}
	}
	down(t.Root(), make([]bool, s.m))
	return xmltree.SortByID(result)
}

// EvalSet returns [[p]](t) as a set of node identities.
func EvalSet(p *pattern.Pattern, t *xmltree.Tree) map[int]bool {
	out := map[int]bool{}
	for _, n := range Eval(p, t) {
		out[n.ID()] = true
	}
	return out
}

// Embeds reports whether an embedding of p into t exists at all
// ([[p]](t) ≠ ∅); it needs only the bottom-up pass.
func Embeds(p *pattern.Pattern, t *xmltree.Tree) bool {
	s := newEvalState(p)
	s.computeSat(t.Root())
	return s.sat[t.Root()][0]
}

// EmbedsAt reports whether the pattern p embeds into the tree t with the
// pattern root mapped to the node v of t (and the rest of the pattern
// mapped into v's subtree). It implements the side conditions of Lemma 6:
// an embedding of SEQ_{n'}^{Ø(R)} into X (v = root of X, anchored) or into
// some subtree of X (any v).
func EmbedsAt(p *pattern.Pattern, t *xmltree.Tree, v *xmltree.Node) bool {
	s := newEvalState(p)
	s.computeSat(t.Root())
	return s.sat[v][0]
}

// EmbedsAnywhere reports whether p embeds into t with the pattern root
// mapped to any node of t.
func EmbedsAnywhere(p *pattern.Pattern, t *xmltree.Tree) bool {
	s := newEvalState(p)
	s.computeSat(t.Root())
	return s.satSub[t.Root()][0]
}

// Embedding is a total assignment of pattern nodes to tree nodes that
// satisfies the four embedding conditions of Section 2.3.
type Embedding map[*pattern.Node]*xmltree.Node

// Valid re-checks the four embedding conditions (root-, label-, child- and
// descendant-edge preservation); it is used by tests.
func (e Embedding) Valid(p *pattern.Pattern, t *xmltree.Tree) bool {
	for _, q := range p.Nodes() {
		v, ok := e[q]
		if !ok {
			return false
		}
		if q.Parent() == nil {
			if v != t.Root() {
				return false
			}
		} else {
			u := e[q.Parent()]
			if u == nil {
				return false
			}
			if q.Axis() == pattern.Child {
				if v.Parent() != u {
					return false
				}
			} else if !u.IsAncestorOf(v) {
				return false
			}
		}
		if !labelOK(q, v) {
			return false
		}
	}
	return true
}

// AllEmbeddings enumerates embeddings of p into t, invoking fn for each
// until fn returns false or the enumeration is exhausted. It is
// exponential in the worst case and exists as the specification oracle for
// Eval and as the embedding chooser of the marking procedure
// (Definition 9).
func AllEmbeddings(p *pattern.Pattern, t *xmltree.Tree, fn func(Embedding) bool) {
	pnodes := p.Nodes()
	e := Embedding{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(pnodes) {
			cp := Embedding{}
			for k, v := range e {
				cp[k] = v
			}
			return fn(cp)
		}
		q := pnodes[i]
		var candidates []*xmltree.Node
		if q.Parent() == nil {
			candidates = []*xmltree.Node{t.Root()}
		} else {
			u := e[q.Parent()]
			if q.Axis() == pattern.Child {
				candidates = u.Children()
			} else {
				var collect func(n *xmltree.Node)
				collect = func(n *xmltree.Node) {
					candidates = append(candidates, n)
					for _, c := range n.Children() {
						collect(c)
					}
				}
				for _, c := range u.Children() {
					collect(c)
				}
			}
		}
		for _, v := range candidates {
			if !labelOK(q, v) {
				continue
			}
			e[q] = v
			if !rec(i + 1) {
				return false
			}
		}
		delete(e, q)
		return true
	}
	rec(0)
}

// FindEmbedding returns an embedding of p into t that maps Ø(p) to target
// (or to any node if target is nil), or nil if none exists.
func FindEmbedding(p *pattern.Pattern, t *xmltree.Tree, target *xmltree.Node) Embedding {
	var found Embedding
	AllEmbeddings(p, t, func(e Embedding) bool {
		if target == nil || e[p.Output()] == target {
			found = e
			return false
		}
		return true
	})
	return found
}

// EvalNaive computes [[p]](t) by full embedding enumeration; the test
// oracle for Eval.
func EvalNaive(p *pattern.Pattern, t *xmltree.Tree) []*xmltree.Node {
	seen := map[*xmltree.Node]bool{}
	AllEmbeddings(p, t, func(e Embedding) bool {
		seen[e[p.Output()]] = true
		return true
	})
	var out []*xmltree.Node
	for n := range seen {
		out = append(out, n)
	}
	return xmltree.SortByID(out)
}
