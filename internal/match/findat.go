package match

import (
	"xmlconflict/internal/pattern"
	"xmlconflict/internal/xmltree"
)

// FindEmbeddingAt returns an embedding of p into t that maps the output
// node Ø(p) to target, or nil if none exists. Unlike FindEmbedding, it
// runs in polynomial time: a path DP places the root-to-output spine of p
// on the root-to-target path of t, and the off-spine subpatterns are then
// filled in greedily from the bottom-up satisfiability tables (sibling
// subpatterns are independent, so greedy choices cannot clash).
//
// The marking procedure of Definition 9 uses it to pick the embeddings
// e_R and e_I whose images must be preserved while a witness is shrunk.
func FindEmbeddingAt(p *pattern.Pattern, t *xmltree.Tree, target *xmltree.Node) Embedding {
	s := newEvalState(p)
	s.computeSat(t.Root())

	spine := p.Spine()
	var path []*xmltree.Node
	for n := target; n != nil; n = n.Parent() {
		path = append(path, n)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	if path[0] != t.Root() {
		return nil
	}
	ls, lp := len(spine), len(path)

	onSpine := map[*pattern.Node]bool{}
	for _, q := range spine {
		onSpine[q] = true
	}

	// findImage returns a node under v whose subtree satisfies the
	// subpattern rooted at qc, respecting qc's axis, or nil.
	findImage := func(qc *pattern.Node, v *xmltree.Node) *xmltree.Node {
		ci := s.pindex[qc]
		if qc.Axis() == pattern.Child {
			for _, tc := range v.Children() {
				if s.sat[tc][ci] {
					return tc
				}
			}
			return nil
		}
		var descend func(n *xmltree.Node) *xmltree.Node
		descend = func(n *xmltree.Node) *xmltree.Node {
			if s.sat[n][ci] {
				return n
			}
			for _, c := range n.Children() {
				if s.satSub[c][ci] {
					return descend(c)
				}
			}
			return nil
		}
		for _, tc := range v.Children() {
			if s.satSub[tc][ci] {
				return descend(tc)
			}
		}
		return nil
	}

	// okAt: spine node q can be mapped to path node v with all off-spine
	// subpatterns of q embeddable below v.
	okAt := func(q *pattern.Node, v *xmltree.Node) bool {
		if !labelOK(q, v) {
			return false
		}
		for _, qc := range q.Children() {
			if onSpine[qc] {
				continue
			}
			if findImage(qc, v) == nil {
				return false
			}
		}
		return true
	}

	// reach[i][j]: spine[0..i] placed on path[0..j] with spine[i] ↦ path[j].
	reach := make([][]bool, ls)
	from := make([][]int, ls)
	for i := range reach {
		reach[i] = make([]bool, lp)
		from[i] = make([]int, lp)
	}
	if okAt(spine[0], path[0]) {
		reach[0][0] = true
	}
	for i := 1; i < ls; i++ {
		for j := 1; j < lp; j++ {
			if !okAt(spine[i], path[j]) {
				continue
			}
			if spine[i].Axis() == pattern.Child {
				if reach[i-1][j-1] {
					reach[i][j] = true
					from[i][j] = j - 1
				}
			} else {
				for k := 0; k < j; k++ {
					if reach[i-1][k] {
						reach[i][j] = true
						from[i][j] = k
						break
					}
				}
			}
		}
	}
	if !reach[ls-1][lp-1] {
		return nil
	}

	e := Embedding{}
	j := lp - 1
	for i := ls - 1; i >= 0; i-- {
		e[spine[i]] = path[j]
		j = from[i][j]
	}

	// Fill in the off-spine subpatterns greedily, top-down.
	var fill func(q *pattern.Node, v *xmltree.Node) bool
	fill = func(q *pattern.Node, v *xmltree.Node) bool {
		e[q] = v
		for _, qc := range q.Children() {
			img := findImage(qc, v)
			if img == nil || !fill(qc, img) {
				return false
			}
		}
		return true
	}
	for _, q := range spine {
		for _, qc := range q.Children() {
			if onSpine[qc] {
				continue
			}
			img := findImage(qc, e[q])
			if img == nil || !fill(qc, img) {
				return nil // unreachable given okAt, kept as a safety net
			}
		}
	}
	return e
}
