package match

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"xmlconflict/internal/pattern"
	"xmlconflict/internal/xmltree"
	"xmlconflict/internal/xpath"
)

func TestEvalSet(t *testing.T) {
	tr := xmltree.MustParse("<a><b/><b/></a>")
	set := EvalSet(xpath.MustParse("/a/b"), tr)
	if len(set) != 2 {
		t.Fatalf("EvalSet = %v", set)
	}
	for _, n := range Eval(xpath.MustParse("/a/b"), tr) {
		if !set[n.ID()] {
			t.Fatalf("id %d missing", n.ID())
		}
	}
}

func TestEmbeddingValidRejectsPartial(t *testing.T) {
	p := xpath.MustParse("/a/b")
	tr := xmltree.MustParse("<a><b/></a>")
	e := Embedding{}
	if e.Valid(p, tr) {
		t.Fatalf("empty assignment accepted")
	}
	// A label-violating assignment is rejected.
	bad := Embedding{p.Root(): tr.Root(), p.Output(): tr.Root()}
	if bad.Valid(p, tr) {
		t.Fatalf("label/edge violation accepted")
	}
}

func TestFindEmbeddingAtRootTargetMismatch(t *testing.T) {
	p := xpath.MustParse("/a/b")
	tr := xmltree.MustParse("<a><b/></a>")
	// Target in a different tree: not on a root path of tr.
	other := xmltree.MustParse("<a><b/></a>")
	if FindEmbeddingAt(p, tr, other.Root().Children()[0]) != nil {
		t.Fatalf("foreign target accepted")
	}
}

func TestUnicodeEndToEnd(t *testing.T) {
	tr := xmltree.MustParse("<книга><著者><מחבר/></著者></книга>")
	p := xpath.MustParse("/книга//מחבר")
	res := Eval(p, tr)
	if len(res) != 1 || res[0].Label() != "מחבר" {
		t.Fatalf("unicode evaluation failed: %v", res)
	}
	// And through the compiled engine.
	if got := Compile(p).Eval(tr); len(got) != 1 {
		t.Fatalf("compiled unicode evaluation failed")
	}
}

func TestEvalInvariantUnderSiblingPermutation(t *testing.T) {
	// The model is unordered: permuting children anywhere must not change
	// which nodes (by identity) a pattern selects. Rebuilding a tree with
	// reversed child lists preserves neither pointers nor IDs, so compare
	// the multiset of result subtree codes instead.
	f := func(pseed, tseed int64) bool {
		prng := rand.New(rand.NewSource(pseed))
		trng := rand.New(rand.NewSource(tseed))
		p := pattern.Random(prng, pattern.RandomConfig{
			Size: prng.Intn(6) + 1, Labels: []string{"a", "b"},
			PWildcard: 0.3, PDescendant: 0.4, PBranch: 0.5,
		})
		tr := xmltree.Random(trng, xmltree.RandomConfig{
			Size: trng.Intn(15) + 1, Labels: []string{"a", "b", "c"},
		})
		rev := reverseChildren(tr)
		want := resultCodes(Eval(p, tr))
		got := resultCodes(Eval(p, rev))
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// reverseChildren rebuilds a tree with every child list reversed.
func reverseChildren(t *xmltree.Tree) *xmltree.Tree {
	out := xmltree.New(t.Root().Label())
	var walk func(src *xmltree.Node, dst *xmltree.Node)
	walk = func(src *xmltree.Node, dst *xmltree.Node) {
		cs := src.Children()
		for i := len(cs) - 1; i >= 0; i-- {
			walk(cs[i], out.AddChild(dst, cs[i].Label()))
		}
	}
	walk(t.Root(), out.Root())
	return out
}

func resultCodes(ns []*xmltree.Node) []string {
	out := make([]string, 0, len(ns))
	for _, n := range ns {
		out = append(out, xmltree.Code(n))
	}
	sort.Strings(out)
	return out
}
