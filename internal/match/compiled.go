package match

import (
	"xmlconflict/internal/pattern"
	"xmlconflict/internal/xmltree"
)

// Evaluator is a compiled form of a pattern for repeated evaluation: the
// pattern is flattened into index arrays once, and each evaluation lays
// the tree out into flat arrays and runs the same two-pass algorithm as
// Eval over bitset rows instead of per-node maps. Semantically identical
// to Eval (property-tested); substantially faster on large documents and
// when one pattern is evaluated against many trees (the workload of the
// witness searches).
type Evaluator struct {
	p *pattern.Pattern
	// Flattened pattern, preorder. Index 0 is the root.
	labels   []string
	wildcard []bool
	childAx  []bool // edge from parent is a child edge
	parent   []int32
	kids     [][]int32
	out      int32
	words    int // bitset words per row
}

// Compile flattens a pattern into an Evaluator.
func Compile(p *pattern.Pattern) *Evaluator {
	nodes := p.Nodes()
	m := len(nodes)
	e := &Evaluator{
		p:        p,
		labels:   make([]string, m),
		wildcard: make([]bool, m),
		childAx:  make([]bool, m),
		parent:   make([]int32, m),
		kids:     make([][]int32, m),
		words:    (m + 63) / 64,
	}
	index := make(map[*pattern.Node]int32, m)
	for i, n := range nodes {
		index[n] = int32(i)
	}
	for i, n := range nodes {
		e.labels[i] = n.Label()
		e.wildcard[i] = n.IsWildcard()
		e.childAx[i] = n.Axis() == pattern.Child
		if n.Parent() == nil {
			e.parent[i] = -1
		} else {
			e.parent[i] = index[n.Parent()]
		}
		for _, c := range n.Children() {
			e.kids[i] = append(e.kids[i], index[c])
		}
	}
	e.out = index[p.Output()]
	return e
}

// flatTree is the arena layout of a tree for one evaluation: nodes in
// preorder, so a subtree is a contiguous range.
type flatTree struct {
	nodes  []*xmltree.Node
	parent []int32
	// end[i]: one past the last preorder index of i's subtree.
	end []int32
}

func flatten(t *xmltree.Tree) *flatTree {
	f := &flatTree{}
	var walk func(n *xmltree.Node, parent int32)
	walk = func(n *xmltree.Node, parent int32) {
		i := int32(len(f.nodes))
		f.nodes = append(f.nodes, n)
		f.parent = append(f.parent, parent)
		f.end = append(f.end, 0)
		for _, c := range n.Children() {
			walk(c, i)
		}
		f.end[i] = int32(len(f.nodes))
	}
	walk(t.Root(), -1)
	return f
}

func (e *Evaluator) labelOK(q int, n *xmltree.Node) bool {
	return e.wildcard[q] || e.labels[q] == n.Label()
}

// Eval computes [[p]](t), identical to match.Eval.
func (e *Evaluator) Eval(t *xmltree.Tree) []*xmltree.Node {
	f := flatten(t)
	n := len(f.nodes)
	w := e.words
	m := len(e.labels)
	// sat and satSub as flat bitset matrices: row i = node i.
	sat := make([]uint64, n*w)
	sub := make([]uint64, n*w)
	get := func(bits []uint64, row, q int) bool {
		return bits[row*w+q/64]&(1<<(q%64)) != 0
	}
	set := func(bits []uint64, row, q int) {
		bits[row*w+q/64] |= 1 << (q % 64)
	}
	// Bottom-up over preorder-reversed nodes (children have larger
	// indexes than parents, and a node's children lie inside its range).
	for v := n - 1; v >= 0; v-- {
		node := f.nodes[v]
		cs := childIndexes(f, v)
		for q := m - 1; q >= 0; q-- {
			ok := e.labelOK(q, node)
			if ok {
				for _, qc := range e.kids[q] {
					found := false
					if e.childAx[qc] {
						for _, c := range cs {
							if get(sat, int(c), int(qc)) {
								found = true
								break
							}
						}
					} else {
						for _, c := range cs {
							if get(sub, int(c), int(qc)) {
								found = true
								break
							}
						}
					}
					if !found {
						ok = false
						break
					}
				}
			}
			if ok {
				set(sat, v, q)
				set(sub, v, q)
			} else {
				for _, c := range cs {
					if get(sub, int(c), q) {
						set(sub, v, q)
						break
					}
				}
			}
		}
	}
	if !get(sat, 0, 0) {
		return nil
	}
	// Top-down feasibility with ancestor-feasibility accumulators.
	feas := make([]uint64, n*w)
	anc := make([]uint64, n*w)
	var result []*xmltree.Node
	for v := 0; v < n; v++ {
		for q := 0; q < m; q++ {
			if !get(sat, v, q) {
				continue
			}
			if e.parent[q] < 0 {
				if v == 0 {
					set(feas, v, q)
				}
				continue
			}
			pq := int(e.parent[q])
			if e.childAx[q] {
				if pv := f.parent[v]; pv >= 0 && get(feas, int(pv), pq) {
					set(feas, v, q)
				}
			} else if get(anc, v, pq) {
				set(feas, v, q)
			}
		}
		if get(feas, v, int(e.out)) {
			result = append(result, f.nodes[v])
		}
		// Propagate anc to children: anc(child) = anc(v) | feas(v).
		for _, c := range childIndexes(f, v) {
			ci := int(c)
			for k := 0; k < w; k++ {
				anc[ci*w+k] = anc[v*w+k] | feas[v*w+k]
			}
		}
	}
	return xmltree.SortByID(result)
}

// Embeds reports whether an embedding exists ([[p]](t) ≠ ∅): only the
// bottom-up pass runs, making it the cheapest filter primitive.
func (e *Evaluator) Embeds(t *xmltree.Tree) bool {
	f := flatten(t)
	n := len(f.nodes)
	w := e.words
	m := len(e.labels)
	sat := make([]uint64, n*w)
	sub := make([]uint64, n*w)
	get := func(bits []uint64, row, q int) bool {
		return bits[row*w+q/64]&(1<<(q%64)) != 0
	}
	set := func(bits []uint64, row, q int) {
		bits[row*w+q/64] |= 1 << (q % 64)
	}
	for v := n - 1; v >= 0; v-- {
		node := f.nodes[v]
		cs := childIndexes(f, v)
		for q := m - 1; q >= 0; q-- {
			ok := e.labelOK(q, node)
			if ok {
				for _, qc := range e.kids[q] {
					found := false
					for _, c := range cs {
						if e.childAx[qc] {
							if get(sat, int(c), int(qc)) {
								found = true
								break
							}
						} else if get(sub, int(c), int(qc)) {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
			}
			if ok {
				set(sat, v, q)
				set(sub, v, q)
			} else {
				for _, c := range cs {
					if get(sub, int(c), q) {
						set(sub, v, q)
						break
					}
				}
			}
		}
	}
	return get(sat, 0, 0)
}

// childIndexes returns the preorder indexes of v's children: the heads of
// the consecutive subtree ranges inside v's range.
func childIndexes(f *flatTree, v int) []int32 {
	var out []int32
	for c := int32(v + 1); c < f.end[v]; c = f.end[c] {
		out = append(out, c)
	}
	return out
}
