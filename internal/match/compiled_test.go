package match

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xmlconflict/internal/pattern"
	"xmlconflict/internal/xmltree"
	"xmlconflict/internal/xpath"
)

func TestCompiledEvalMatchesReference(t *testing.T) {
	f := func(pseed, tseed int64, psize, tsize uint8) bool {
		prng := rand.New(rand.NewSource(pseed))
		trng := rand.New(rand.NewSource(tseed))
		p := pattern.Random(prng, pattern.RandomConfig{
			Size: int(psize%8) + 1, Labels: []string{"a", "b", "c"},
			PWildcard: 0.3, PDescendant: 0.4, PBranch: 0.5,
		})
		tr := xmltree.Random(trng, xmltree.RandomConfig{
			Size: int(tsize%40) + 1, Labels: []string{"a", "b", "c"},
		})
		ev := Compile(p)
		if !xmltree.SameNodeSet(ev.Eval(tr), Eval(p, tr)) {
			t.Logf("p=%s t=%s", p, tr)
			return false
		}
		if ev.Embeds(tr) != Embeds(p, tr) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestCompiledEvalKnownCases(t *testing.T) {
	p := xpath.MustParse("a[.//c]/b[d][*//f]")
	ev := Compile(p)
	tr := xmltree.MustParse("<a><b><d/><e><f/></e></b><c/></a>")
	res := ev.Eval(tr)
	if len(res) != 1 || res[0].Label() != "b" {
		t.Fatalf("Figure 2 via compiled evaluator: %v", res)
	}
	if !ev.Embeds(tr) {
		t.Fatalf("Embeds false on a matching tree")
	}
	if Compile(xpath.MustParse("//zzz")).Embeds(tr) {
		t.Fatalf("Embeds true on a non-matching pattern")
	}
}

func TestCompiledReusableAcrossTrees(t *testing.T) {
	ev := Compile(xpath.MustParse("//b[c]"))
	t1 := xmltree.MustParse("<a><b><c/></b></a>")
	t2 := xmltree.MustParse("<a><b/></a>")
	if len(ev.Eval(t1)) != 1 {
		t.Fatalf("t1 wrong")
	}
	if len(ev.Eval(t2)) != 0 {
		t.Fatalf("t2 wrong")
	}
	// And again, to catch state leakage between evaluations.
	if len(ev.Eval(t1)) != 1 {
		t.Fatalf("t1 re-eval wrong")
	}
}

func TestCompiledLargePattern(t *testing.T) {
	// More than 64 pattern nodes exercises multi-word bitset rows.
	rng := rand.New(rand.NewSource(5))
	p := pattern.Random(rng, pattern.RandomConfig{
		Size: 100, Labels: []string{"a", "b"},
		PWildcard: 0.3, PDescendant: 0.4, PBranch: 0.4,
	})
	tr := xmltree.Random(rng, xmltree.RandomConfig{Size: 200, Labels: []string{"a", "b"}})
	ev := Compile(p)
	if !xmltree.SameNodeSet(ev.Eval(tr), Eval(p, tr)) {
		t.Fatalf("multi-word bitset mismatch")
	}
	// The pattern's own model must match, output included.
	m, out := p.Model("z")
	res := ev.Eval(m)
	found := false
	for _, n := range res {
		if n == out {
			found = true
		}
	}
	if !found {
		t.Fatalf("model output not selected")
	}
}
