package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"xmlconflict/internal/store"
	"xmlconflict/internal/telemetry"
)

// openTest opens a router over a temp dir and closes it with the test.
func openTest(t *testing.T, dir string, opts Options) *Router {
	t.Helper()
	r, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// docOnShard finds a document name the router maps to the given shard.
func docOnShard(t *testing.T, r *Router, shard int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("doc-%d", i)
		if r.ShardFor(name) == shard {
			return name
		}
	}
	t.Fatalf("no doc name found for shard %d", shard)
	return ""
}

func TestRoutingIsDeterministicAndCoversAllShards(t *testing.T) {
	r := openTest(t, t.TempDir(), Options{Shards: 4})
	seen := map[int]int{}
	for i := 0; i < 4000; i++ {
		name := fmt.Sprintf("doc-%d", i)
		s1, s2 := r.ShardFor(name), r.ShardFor(name)
		if s1 != s2 {
			t.Fatalf("ShardFor(%q) unstable: %d then %d", name, s1, s2)
		}
		if s1 < 0 || s1 >= 4 {
			t.Fatalf("ShardFor(%q) = %d out of range", name, s1)
		}
		seen[s1]++
	}
	for i := 0; i < 4; i++ {
		if seen[i] == 0 {
			t.Fatalf("shard %d owns no documents out of 4000: %v", i, seen)
		}
	}
}

func TestRoutedOpsLandOnOwningStore(t *testing.T) {
	r := openTest(t, t.TempDir(), Options{Shards: 3})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		id := docOnShard(t, r, i)
		if _, err := r.CreateCtx(ctx, id, "<a/>"); err != nil {
			t.Fatalf("create %s: %v", id, err)
		}
		// The owning store holds it; the others must not.
		for j := 0; j < 3; j++ {
			_, err := r.Store(j).Get(id)
			if j == i && err != nil {
				t.Fatalf("shard %d should own %s: %v", j, id, err)
			}
			if j != i && !errors.Is(err, store.ErrNotFound) {
				t.Fatalf("shard %d unexpectedly knows %s (err=%v)", j, id, err)
			}
		}
		if _, err := r.SubmitCtx(ctx, id, store.Op{Kind: "insert", Pattern: "/a", X: "<x/>"}); err != nil {
			t.Fatalf("submit %s: %v", id, err)
		}
		if _, err := r.Get(id); err != nil {
			t.Fatalf("router Get %s: %v", id, err)
		}
	}
	ids := r.Docs()
	if len(ids) != 3 {
		t.Fatalf("Docs() = %v, want 3 ids", ids)
	}
}

func TestManifestRefusesShardCountChange(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if _, err := Open(dir, Options{Shards: 2}); err == nil {
		t.Fatal("reopen with a different shard count succeeded; documents would misroute")
	}
	r2, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatalf("reopen with matching count: %v", err)
	}
	r2.Close()
}

func TestLegacyUnshardedDirectory(t *testing.T) {
	dir := t.TempDir()
	// A pre-sharding store rooted at dir, as PR 5 laid it out.
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create("legacy-doc", "<a/>"); err != nil {
		t.Fatal(err)
	}
	st.Close()

	if _, err := Open(dir, Options{Shards: 4}); err == nil {
		t.Fatal("sharded open over a legacy store succeeded; its documents would be unreachable")
	}
	r := openTest(t, dir, Options{Shards: 1})
	if _, err := r.Get("legacy-doc"); err != nil {
		t.Fatalf("legacy document lost after shard.Open: %v", err)
	}
}

func TestCrossShardListDeterminism(t *testing.T) {
	r := openTest(t, t.TempDir(), Options{Shards: 4})
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("doc-%03d", i)
		if _, err := r.CreateCtx(ctx, id, "<a/>"); err != nil {
			t.Fatal(err)
		}
	}
	first, err := r.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(first) != 40 {
		t.Fatalf("List returned %d entries, want 40", len(first))
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].Doc >= first[i].Doc {
			t.Fatalf("listing not sorted: %q before %q", first[i-1].Doc, first[i].Doc)
		}
	}
	for _, e := range first {
		if e.Shard != r.ShardFor(e.Doc) {
			t.Fatalf("entry %q reports shard %d, router says %d", e.Doc, e.Shard, r.ShardFor(e.Doc))
		}
	}
	// The gather must be deterministic run over run, whatever order the
	// per-shard goroutines finish in.
	for rep := 0; rep < 10; rep++ {
		again, err := r.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(first) {
			t.Fatalf("rep %d: %d entries, want %d", rep, len(again), len(first))
		}
		for i := range again {
			if again[i] != first[i] {
				t.Fatalf("rep %d: entry %d drifted: %+v vs %+v", rep, i, again[i], first[i])
			}
		}
	}
}

func TestPerShardMetricsLabeled(t *testing.T) {
	m := telemetry.New()
	r := openTest(t, t.TempDir(), Options{Shards: 2, Store: store.Options{Metrics: m}})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := r.CreateCtx(ctx, docOnShard(t, r, i), "<a/>"); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()
	for i := 0; i < 2; i++ {
		key := fmt.Sprintf("store.appends|shard=%d", i)
		if snap.Counter(key) == 0 {
			t.Fatalf("no %s series after a create on shard %d; counters: %v", key, i, snap.Counters)
		}
	}
}

func TestSnapshotAllAndLSNs(t *testing.T) {
	r := openTest(t, t.TempDir(), Options{Shards: 3})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := r.CreateCtx(ctx, docOnShard(t, r, i), "<a/>"); err != nil {
			t.Fatal(err)
		}
	}
	lsns, err := r.SnapshotAll()
	if err != nil {
		t.Fatalf("SnapshotAll: %v", err)
	}
	if len(lsns) != 3 {
		t.Fatalf("SnapshotAll returned %d lsns, want 3", len(lsns))
	}
	for i, lsn := range lsns {
		if lsn == 0 {
			t.Fatalf("shard %d snapshot LSN 0 after a create", i)
		}
		if got := r.LSNs()[i]; got != lsn {
			t.Fatalf("shard %d: LSNs()=%d, snapshot said %d", i, got, lsn)
		}
	}
}

func TestTenantOf(t *testing.T) {
	cases := []struct{ header, doc, want string }{
		{"acme", "x--doc", "acme"},       // header wins
		{"", "acme--doc-1", "acme"},      // doc prefix
		{"", "--doc", DefaultTenant},     // empty prefix is no tenant
		{"", "plain-doc", DefaultTenant}, // no signal
		{"", "", DefaultTenant},
	}
	for _, c := range cases {
		if got := TenantOf(c.header, c.doc); got != c.want {
			t.Errorf("TenantOf(%q, %q) = %q, want %q", c.header, c.doc, got, c.want)
		}
	}
}

func TestTenantLimiterBoundsInflight(t *testing.T) {
	m := telemetry.New()
	l := NewTenantLimiter(2, m)
	rel1, err := l.Acquire("acme")
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := l.Acquire("acme")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Acquire("acme"); !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("third acquire: %v, want ErrTenantLimit", err)
	}
	// Another tenant is unaffected: the limit is per tenant.
	relB, err := l.Acquire("beta")
	if err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	relB()
	rel1()
	rel3, err := l.Acquire("acme")
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	rel3()
	rel2()

	snap := m.Snapshot()
	if snap.Counter("tenant.requests|tenant=acme") != 4 {
		t.Fatalf("acme requests = %d, want 4", snap.Counter("tenant.requests|tenant=acme"))
	}
	if snap.Counter("tenant.rejected|tenant=acme") != 1 {
		t.Fatalf("acme rejected = %d, want 1", snap.Counter("tenant.rejected|tenant=acme"))
	}
	if got := snap.Gauges["tenant.inflight|tenant=acme"]; got != 0 {
		t.Fatalf("acme inflight gauge = %d after releases, want 0", got)
	}
}

func TestTenantLimiterZeroIsUnlimitedButCounted(t *testing.T) {
	m := telemetry.New()
	l := NewTenantLimiter(0, m)
	for i := 0; i < 50; i++ {
		rel, err := l.Acquire("acme")
		if err != nil {
			t.Fatal(err)
		}
		defer rel()
	}
	if n := m.Snapshot().Counter("tenant.requests|tenant=acme"); n != 50 {
		t.Fatalf("requests = %d, want 50", n)
	}
}

func TestTenantLimiterOverflowBucket(t *testing.T) {
	l := NewTenantLimiter(1, telemetry.New())
	l.mu.Lock()
	for i := 0; i < maxTrackedTenants; i++ {
		l.state(fmt.Sprintf("t%d", i))
	}
	l.mu.Unlock()
	rel, err := l.Acquire("one-too-many")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := l.Acquire("another-fresh-tenant"); !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("tenants past the cap must share the overflow allowance, got %v", err)
	}
	if _, ok := l.tenants["one-too-many"]; ok {
		t.Fatal("tenant past the cap was tracked individually")
	}
}

func TestLabeledMetricsSanitizeTenantNames(t *testing.T) {
	m := telemetry.New()
	l := NewTenantLimiter(0, m)
	rel, err := l.Acquire(`evil|tenant="x",y=z`)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	for name := range m.Snapshot().Counters {
		if strings.Count(name, "|") > 1 || strings.Contains(name, `"`) {
			t.Fatalf("unsanitized series name %q", name)
		}
	}
}
