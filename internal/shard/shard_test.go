package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xmlconflict/internal/store"
	"xmlconflict/internal/telemetry"
)

// openTest opens a router over a temp dir and closes it with the test.
func openTest(t *testing.T, dir string, opts Options) *Router {
	t.Helper()
	r, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// docOnShard finds a document name the router maps to the given shard.
func docOnShard(t *testing.T, r *Router, shard int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("doc-%d", i)
		if r.ShardFor(name) == shard {
			return name
		}
	}
	t.Fatalf("no doc name found for shard %d", shard)
	return ""
}

func TestRoutingIsDeterministicAndCoversAllShards(t *testing.T) {
	r := openTest(t, t.TempDir(), Options{Shards: 4})
	seen := map[int]int{}
	for i := 0; i < 4000; i++ {
		name := fmt.Sprintf("doc-%d", i)
		s1, s2 := r.ShardFor(name), r.ShardFor(name)
		if s1 != s2 {
			t.Fatalf("ShardFor(%q) unstable: %d then %d", name, s1, s2)
		}
		if s1 < 0 || s1 >= 4 {
			t.Fatalf("ShardFor(%q) = %d out of range", name, s1)
		}
		seen[s1]++
	}
	for i := 0; i < 4; i++ {
		if seen[i] == 0 {
			t.Fatalf("shard %d owns no documents out of 4000: %v", i, seen)
		}
	}
}

func TestRoutedOpsLandOnOwningStore(t *testing.T) {
	r := openTest(t, t.TempDir(), Options{Shards: 3})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		id := docOnShard(t, r, i)
		if _, err := r.CreateCtx(ctx, id, "<a/>"); err != nil {
			t.Fatalf("create %s: %v", id, err)
		}
		// The owning store holds it; the others must not.
		for j := 0; j < 3; j++ {
			_, err := r.Store(j).Get(id)
			if j == i && err != nil {
				t.Fatalf("shard %d should own %s: %v", j, id, err)
			}
			if j != i && !errors.Is(err, store.ErrNotFound) {
				t.Fatalf("shard %d unexpectedly knows %s (err=%v)", j, id, err)
			}
		}
		if _, err := r.SubmitCtx(ctx, id, store.Op{Kind: "insert", Pattern: "/a", X: "<x/>"}); err != nil {
			t.Fatalf("submit %s: %v", id, err)
		}
		if _, err := r.Get(id); err != nil {
			t.Fatalf("router Get %s: %v", id, err)
		}
	}
	ids := r.Docs()
	if len(ids) != 3 {
		t.Fatalf("Docs() = %v, want 3 ids", ids)
	}
}

func TestManifestRefusesShardCountChange(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if _, err := Open(dir, Options{Shards: 2}); err == nil {
		t.Fatal("reopen with a different shard count succeeded; documents would misroute")
	}
	r2, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatalf("reopen with matching count: %v", err)
	}
	r2.Close()
}

// TestManifestTruncationRefusesToOpen cuts a valid shards.json at
// every byte: no prefix may open. A crash mid-write (without the
// temp+rename discipline) or a torn copy must refuse loudly — guessing
// a layout routes documents to the wrong WAL, which is silent loss.
func TestManifestTruncationRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	path := filepath.Join(dir, manifestName)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Up to len-2: the final bytes are "}\n", and the cut at len-1 keeps
	// the closing brace — a complete (if newline-less) manifest.
	for i := 1; i < len(full)-1; i++ {
		if err := os.WriteFile(path, full[:i], 0o644); err != nil {
			t.Fatal(err)
		}
		if r2, err := Open(dir, Options{Shards: 2}); err == nil {
			r2.Close()
			t.Fatalf("opened with %s truncated to %d of %d bytes", manifestName, i, len(full))
		}
	}
	// The intact manifest still opens: the strictness rejects damage,
	// not age.
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	r3, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatalf("reopen after restore: %v", err)
	}
	r3.Close()
}

func TestManifestRejectsStructuralGarbage(t *testing.T) {
	cases := []struct{ name, content, wantSub string }{
		{"empty-file", "", "corrupt or half-written"},
		{"not-json", "not a manifest", "corrupt or half-written"},
		{"wrong-version", `{"version":2,"shards":2,"scheme":"crc32c-ring/v1"}`, "version"},
		{"zero-shards", `{"version":1,"shards":0,"scheme":"crc32c-ring/v1"}`, "corrupt or half-written"},
		{"negative-shards", `{"version":1,"shards":-3,"scheme":"crc32c-ring/v1"}`, "corrupt or half-written"},
		{"no-scheme", `{"version":1,"shards":2}`, "no hash scheme"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(c.content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Open(dir, Options{Shards: 2})
			if err == nil {
				t.Fatal("opened over a damaged manifest")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not name the damage (%q)", err, c.wantSub)
			}
		})
	}
}

func TestLegacyUnshardedDirectory(t *testing.T) {
	dir := t.TempDir()
	// A pre-sharding store rooted at dir, as PR 5 laid it out.
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create("legacy-doc", "<a/>"); err != nil {
		t.Fatal(err)
	}
	st.Close()

	if _, err := Open(dir, Options{Shards: 4}); err == nil {
		t.Fatal("sharded open over a legacy store succeeded; its documents would be unreachable")
	}
	r := openTest(t, dir, Options{Shards: 1})
	if _, err := r.Get("legacy-doc"); err != nil {
		t.Fatalf("legacy document lost after shard.Open: %v", err)
	}
}

func TestCrossShardListDeterminism(t *testing.T) {
	r := openTest(t, t.TempDir(), Options{Shards: 4})
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("doc-%03d", i)
		if _, err := r.CreateCtx(ctx, id, "<a/>"); err != nil {
			t.Fatal(err)
		}
	}
	first, err := r.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(first) != 40 {
		t.Fatalf("List returned %d entries, want 40", len(first))
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].Doc >= first[i].Doc {
			t.Fatalf("listing not sorted: %q before %q", first[i-1].Doc, first[i].Doc)
		}
	}
	for _, e := range first {
		if e.Shard != r.ShardFor(e.Doc) {
			t.Fatalf("entry %q reports shard %d, router says %d", e.Doc, e.Shard, r.ShardFor(e.Doc))
		}
	}
	// The gather must be deterministic run over run, whatever order the
	// per-shard goroutines finish in.
	for rep := 0; rep < 10; rep++ {
		again, err := r.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(first) {
			t.Fatalf("rep %d: %d entries, want %d", rep, len(again), len(first))
		}
		for i := range again {
			if again[i] != first[i] {
				t.Fatalf("rep %d: entry %d drifted: %+v vs %+v", rep, i, again[i], first[i])
			}
		}
	}
}

func TestPerShardMetricsLabeled(t *testing.T) {
	m := telemetry.New()
	r := openTest(t, t.TempDir(), Options{Shards: 2, Store: store.Options{Metrics: m}})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := r.CreateCtx(ctx, docOnShard(t, r, i), "<a/>"); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()
	for i := 0; i < 2; i++ {
		key := fmt.Sprintf("store.appends|shard=%d", i)
		if snap.Counter(key) == 0 {
			t.Fatalf("no %s series after a create on shard %d; counters: %v", key, i, snap.Counters)
		}
	}
}

func TestSnapshotAllAndLSNs(t *testing.T) {
	r := openTest(t, t.TempDir(), Options{Shards: 3})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := r.CreateCtx(ctx, docOnShard(t, r, i), "<a/>"); err != nil {
			t.Fatal(err)
		}
	}
	lsns, err := r.SnapshotAll()
	if err != nil {
		t.Fatalf("SnapshotAll: %v", err)
	}
	if len(lsns) != 3 {
		t.Fatalf("SnapshotAll returned %d lsns, want 3", len(lsns))
	}
	for i, lsn := range lsns {
		if lsn == 0 {
			t.Fatalf("shard %d snapshot LSN 0 after a create", i)
		}
		if got := r.LSNs()[i]; got != lsn {
			t.Fatalf("shard %d: LSNs()=%d, snapshot said %d", i, got, lsn)
		}
	}
}

func TestTenantOf(t *testing.T) {
	cases := []struct{ header, doc, want string }{
		{"acme", "x--doc", "acme"},       // header wins
		{"", "acme--doc-1", "acme"},      // doc prefix
		{"", "--doc", DefaultTenant},     // empty prefix is no tenant
		{"", "plain-doc", DefaultTenant}, // no signal
		{"", "", DefaultTenant},
	}
	for _, c := range cases {
		if got := TenantOf(c.header, c.doc); got != c.want {
			t.Errorf("TenantOf(%q, %q) = %q, want %q", c.header, c.doc, got, c.want)
		}
	}
}

func TestTenantLimiterBoundsInflight(t *testing.T) {
	m := telemetry.New()
	l := NewTenantLimiter(2, m)
	rel1, err := l.Acquire("acme")
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := l.Acquire("acme")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Acquire("acme"); !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("third acquire: %v, want ErrTenantLimit", err)
	}
	// Another tenant is unaffected: the limit is per tenant.
	relB, err := l.Acquire("beta")
	if err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	relB()
	rel1()
	rel3, err := l.Acquire("acme")
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	rel3()
	rel2()

	snap := m.Snapshot()
	if snap.Counter("tenant.requests|tenant=acme") != 4 {
		t.Fatalf("acme requests = %d, want 4", snap.Counter("tenant.requests|tenant=acme"))
	}
	if snap.Counter("tenant.rejected|tenant=acme") != 1 {
		t.Fatalf("acme rejected = %d, want 1", snap.Counter("tenant.rejected|tenant=acme"))
	}
	if got := snap.Gauges["tenant.inflight|tenant=acme"]; got != 0 {
		t.Fatalf("acme inflight gauge = %d after releases, want 0", got)
	}
}

func TestTenantLimiterZeroIsUnlimitedButCounted(t *testing.T) {
	m := telemetry.New()
	l := NewTenantLimiter(0, m)
	for i := 0; i < 50; i++ {
		rel, err := l.Acquire("acme")
		if err != nil {
			t.Fatal(err)
		}
		defer rel()
	}
	if n := m.Snapshot().Counter("tenant.requests|tenant=acme"); n != 50 {
		t.Fatalf("requests = %d, want 50", n)
	}
}

func TestTenantLimiterOverflowBucketWhenAllBusy(t *testing.T) {
	l := NewTenantLimiter(1, telemetry.New())
	l.mu.Lock()
	for i := 0; i < maxTrackedTenants; i++ {
		// Every tracked tenant is mid-flight: nothing is evictable, so
		// newcomers must share the overflow bucket.
		l.state(fmt.Sprintf("t%d", i)).inflight = 1
	}
	l.mu.Unlock()
	rel, err := l.Acquire("one-too-many")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := l.Acquire("another-fresh-tenant"); !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("tenants past the cap must share the overflow allowance, got %v", err)
	}
	if _, ok := l.tenants["one-too-many"]; ok {
		t.Fatal("tenant past the cap was tracked individually")
	}
}

// TestTenantLimiterEvictsIdleAfterSpray is the regression for the
// permanent overflow fold: an id-spraying client used to fill the
// tracking table with dead states forever, wedging every later
// legitimate tenant into the shared overflow bucket (where one hot
// stranger's traffic would 429 them). Idle states are evicted instead.
func TestTenantLimiterEvictsIdleAfterSpray(t *testing.T) {
	m := telemetry.New()
	l := NewTenantLimiter(1, m)
	for i := 0; i < maxTrackedTenants+50; i++ {
		rel, err := l.Acquire(fmt.Sprintf("spray-%d", i))
		if err != nil {
			t.Fatalf("spray %d: %v", i, err)
		}
		rel()
	}
	l.mu.Lock()
	tracked := len(l.tenants)
	l.mu.Unlock()
	if tracked > maxTrackedTenants {
		t.Fatalf("%d tracked states after spray, cap %d", tracked, maxTrackedTenants)
	}
	// A legitimate tenant arriving after the spray gets its own
	// accounting and its own allowance, not the overflow bucket's.
	rel, err := l.Acquire("legit")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	l.mu.Lock()
	_, own := l.tenants["legit"]
	l.mu.Unlock()
	if !own {
		t.Fatal("post-spray tenant folded into overflow despite idle evictable states")
	}
	if _, err := l.Acquire("legit"); !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("own allowance not enforced: %v", err)
	}
	if n := m.Snapshot().Counter("tenant.evicted"); n == 0 {
		t.Fatal("no evictions recorded")
	}
}

// TestTenantOfSanitizesHostileHeaders: X-Tenant is attacker-controlled
// and flows into metric labels and quota keys; anything malformed
// folds into the shared ~invalid bucket instead of minting
// per-payload series.
func TestTenantOfSanitizesHostileHeaders(t *testing.T) {
	long := strings.Repeat("a", maxTenantLen+1)
	cases := []struct{ header, doc, want string }{
		{"acme-1.prod_2", "", "acme-1.prod_2"}, // well-formed survives
		{strings.Repeat("a", maxTenantLen), "", strings.Repeat("a", maxTenantLen)},
		{long, "", invalidTenant},
		{"evil|tenant=x", "", invalidTenant},    // label separator injection
		{"a=b", "", invalidTenant},              // label assignment injection
		{"line\nbreak", "", invalidTenant},      // line protocol injection
		{"../../etc/passwd", "", invalidTenant}, // path chars
		{"tab\there", "", invalidTenant},        // control byte
		{"spa ce", "", invalidTenant},           // whitespace
		{"", "evil|t--doc", invalidTenant},      // hostile doc prefix too
		{"", long + "--doc", invalidTenant},     // oversized doc prefix
		{"", "fine.tenant--doc", "fine.tenant"}, // well-formed prefix survives
	}
	for _, c := range cases {
		if got := TenantOf(c.header, c.doc); got != c.want {
			t.Errorf("TenantOf(%q, %q) = %q, want %q", c.header, c.doc, got, c.want)
		}
	}
}

func TestLabeledMetricsSanitizeTenantNames(t *testing.T) {
	m := telemetry.New()
	l := NewTenantLimiter(0, m)
	rel, err := l.Acquire(`evil|tenant="x",y=z`)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	for name := range m.Snapshot().Counters {
		if strings.Count(name, "|") > 1 || strings.Contains(name, `"`) {
			t.Fatalf("unsanitized series name %q", name)
		}
	}
}
