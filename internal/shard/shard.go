// Package shard partitions the durable document namespace across S
// in-process store shards. Each shard is a full internal/store
// instance — its own WAL, fsync policy, snapshot cadence, and
// recovery — rooted in its own subdirectory, so the per-document
// durability invariant ("never acknowledge what recovery cannot read
// back") holds shard-locally and a fail-stopped shard poisons only
// the documents it owns. Routing is consistent hashing on the
// document name (CRC-32C over virtual nodes), recorded in a
// shards.json manifest so a directory can never silently reopen with
// a different shard count and strand documents on the wrong WAL.
//
// Cross-shard operations (document listing, snapshot-all) fan out to
// every shard and merge with a deterministic order, mirroring
// DetectBatch's indexed gather: same inputs, same output order,
// regardless of which shard answered first.
package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"xmlconflict/internal/store"
	"xmlconflict/internal/telemetry/span"
)

const (
	// manifestName records the sharding layout inside the store root.
	manifestName = "shards.json"
	// vnodesPerShard is the virtual-node count per shard on the hash
	// ring; 64 keeps the max/mean ownership skew low single-digit
	// percent while the ring stays small enough to rebuild at Open.
	vnodesPerShard = 64
	// hashScheme names the routing function in the manifest; any
	// future change to the ring construction must bump it so old
	// directories refuse to open under a router that would misroute
	// their documents.
	hashScheme = "crc32c-ring/v1"
)

// castagnoli is the CRC-32C table, matching the WAL's checksum flavor.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a shard router.
type Options struct {
	// Shards is the number of in-process shards; 0 or 1 selects the
	// unsharded layout (one store rooted directly in dir, exactly what
	// a pre-sharding directory holds).
	Shards int
	// Store is the template applied to every shard: fsync policy,
	// snapshot cadence, limits. Store.Metrics is the shared registry;
	// with more than one shard each store receives a
	// Labeled("shard", i) view of it, so per-shard store.* series
	// coexist on one /metrics page.
	Store store.Options
}

// manifest pins a directory to its sharding layout.
type manifest struct {
	Version int    `json:"version"`
	Shards  int    `json:"shards"`
	Scheme  string `json:"scheme"`
}

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	hash  uint32
	shard int
}

// Router routes document operations to the shard owning each name and
// gathers cross-shard reads deterministically. All methods are safe
// for concurrent use; per-shard serialization lives in the stores.
type Router struct {
	dir    string
	n      int
	stores []*store.Store
	ring   []ringPoint
}

// Open loads (or initializes) a sharded document space rooted at dir.
// A fresh directory is laid out as shard-00/..shard-NN/ plus the
// manifest; reopening demands the same shard count and hash scheme. A
// legacy unsharded directory (a wal.log at the root, no manifest) is
// honored when Shards <= 1 and refused otherwise — resharding in
// place would strand its documents.
func Open(dir string, opts Options) (*Router, error) {
	n := opts.Shards
	if n <= 0 {
		n = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: create dir: %w", err)
	}
	legacy, err := legacyLayout(dir)
	if err != nil {
		return nil, err
	}
	man, haveMan, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	switch {
	case haveMan:
		if man.Shards != n {
			return nil, fmt.Errorf("shard: %s was laid out with %d shards; refusing to open with %d (documents would route to the wrong WAL)", dir, man.Shards, n)
		}
		if man.Scheme != hashScheme {
			return nil, fmt.Errorf("shard: %s uses hash scheme %q; this build routes with %q", dir, man.Scheme, hashScheme)
		}
	case legacy:
		if n > 1 {
			return nil, fmt.Errorf("shard: %s holds an unsharded store; refusing to open with %d shards (its documents would be unreachable)", dir, n)
		}
	default:
		if err := writeManifest(dir, manifest{Version: 1, Shards: n, Scheme: hashScheme}); err != nil {
			return nil, err
		}
	}

	r := &Router{dir: dir, n: n}
	r.ring = buildRing(n)
	base := opts.Store.Metrics
	for i := 0; i < n; i++ {
		sdir := dir
		if !legacy {
			sdir = filepath.Join(dir, shardDirName(i))
		}
		so := opts.Store
		if n > 1 {
			// Each shard records under store.*|shard=i so saturation or
			// fail-stop of one WAL is visible per shard, not averaged away.
			so.Metrics = base.Labeled("shard", strconv.Itoa(i))
		}
		st, err := store.Open(sdir, so)
		if err != nil {
			for _, prev := range r.stores {
				prev.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		r.stores = append(r.stores, st)
	}
	return r, nil
}

func shardDirName(i int) string { return fmt.Sprintf("shard-%02d", i) }

// legacyLayout reports whether dir holds a pre-sharding store rooted
// at the top level (its WAL lives at dir/wal.log).
func legacyLayout(dir string) (bool, error) {
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return false, nil
	}
	_, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, fmt.Errorf("shard: probe legacy layout: %w", err)
}

// readManifest loads and strictly validates the layout manifest. Only
// a missing file means "no manifest"; anything else that is not a
// complete, well-formed layout — truncated JSON, an empty file, a
// half-written rename survivor, unknown versions, nonsense shard
// counts — refuses to open. Guessing a layout here would route
// documents to the wrong WAL, which is silent data loss; refusing is
// the only honest answer.
func readManifest(dir string) (manifest, bool, error) {
	var man manifest
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return man, false, nil
	}
	if err != nil {
		return man, false, fmt.Errorf("shard: read manifest: %w", err)
	}
	if err := json.Unmarshal(b, &man); err != nil {
		return man, false, fmt.Errorf("shard: %s is corrupt or half-written (%v); refusing to guess a layout", manifestName, err)
	}
	if man.Version != 1 {
		return man, false, fmt.Errorf("shard: %s has version %d; this build reads version 1", manifestName, man.Version)
	}
	if man.Shards <= 0 {
		return man, false, fmt.Errorf("shard: %s is corrupt or half-written (shard count %d); refusing to guess a layout", manifestName, man.Shards)
	}
	if man.Scheme == "" {
		return man, false, fmt.Errorf("shard: %s is corrupt or half-written (no hash scheme); refusing to guess a layout", manifestName)
	}
	return man, true, nil
}

// writeManifest publishes the layout via temp+rename so a crash while
// initializing can never leave a half-written manifest that later
// opens read as a different layout.
func writeManifest(dir string, man manifest) error {
	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encode manifest: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "shards-*.tmp")
	if err != nil {
		return fmt.Errorf("shard: manifest temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(b, '\n')); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("shard: write manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("shard: close manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("shard: publish manifest: %w", err)
	}
	return nil
}

// buildRing constructs the consistent-hash ring: vnodesPerShard points
// per shard, sorted by hash with shard index as the deterministic
// tiebreak.
func buildRing(n int) []ringPoint {
	if n == 1 {
		return nil
	}
	ring := make([]ringPoint, 0, n*vnodesPerShard)
	for i := 0; i < n; i++ {
		for v := 0; v < vnodesPerShard; v++ {
			key := fmt.Sprintf("shard-%d/vnode-%d", i, v)
			ring = append(ring, ringPoint{hash: crc32.Checksum([]byte(key), castagnoli), shard: i})
		}
	}
	sort.Slice(ring, func(a, b int) bool {
		if ring[a].hash != ring[b].hash {
			return ring[a].hash < ring[b].hash
		}
		return ring[a].shard < ring[b].shard
	})
	return ring
}

// ShardFor returns the index of the shard owning doc: the first ring
// point at or past the document hash, wrapping to the ring start.
func (r *Router) ShardFor(doc string) int {
	if r.n == 1 {
		return 0
	}
	h := crc32.Checksum([]byte(doc), castagnoli)
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	if i == len(r.ring) {
		i = 0
	}
	return r.ring[i].shard
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.n }

// Store exposes one shard's store, for tests and diagnostics.
func (r *Router) Store(i int) *store.Store { return r.stores[i] }

// route resolves doc to its owning store and stamps the shard index
// on the request's span, so the schedule→ack path of every traced
// document operation names the WAL it ran on.
func (r *Router) route(ctx context.Context, doc string) *store.Store {
	idx := r.ShardFor(doc)
	span.FromContext(ctx).Set("shard", idx)
	return r.stores[idx]
}

// CreateCtx registers a new document on the shard owning id.
func (r *Router) CreateCtx(ctx context.Context, id, xml string) (store.Result, error) {
	return r.route(ctx, id).CreateCtx(ctx, id, xml)
}

// Get returns a stored document's info from the shard owning id.
func (r *Router) Get(id string) (store.Info, error) {
	return r.stores[r.ShardFor(id)].Get(id)
}

// DropCtx removes a document from the shard owning id.
func (r *Router) DropCtx(ctx context.Context, id string) (store.Result, error) {
	return r.route(ctx, id).DropCtx(ctx, id)
}

// SubmitCtx schedules one operation against the shard owning id.
func (r *Router) SubmitCtx(ctx context.Context, id string, op store.Op) (store.Result, error) {
	return r.route(ctx, id).SubmitCtx(ctx, id, op)
}

// SnapshotDoc snapshots the single shard owning id and returns that
// shard's snapshot LSN.
func (r *Router) SnapshotDoc(id string) (uint64, error) {
	return r.stores[r.ShardFor(id)].Snapshot()
}

// SnapshotAll snapshots every shard (fanning out concurrently) and
// returns the per-shard snapshot LSNs in shard order. Shards that
// fail keep their slot (LSN 0) and their errors are joined.
func (r *Router) SnapshotAll() ([]uint64, error) {
	lsns := make([]uint64, r.n)
	errs := make([]error, r.n)
	var wg sync.WaitGroup
	for i, st := range r.stores {
		wg.Add(1)
		go func(i int, st *store.Store) {
			defer wg.Done()
			lsn, err := st.Snapshot()
			lsns[i] = lsn
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		}(i, st)
	}
	wg.Wait()
	return lsns, errors.Join(errs...)
}

// DocEntry is one document in a cross-shard listing.
type DocEntry struct {
	Doc    string `json:"doc"`
	LSN    uint64 `json:"lsn"`
	Digest string `json:"digest"`
	Shard  int    `json:"shard"`
}

// List gathers every stored document across all shards into one
// deterministic listing, sorted by document id. The fan-out writes
// into indexed slots (the DetectBatch gather pattern), so concurrent
// shards cannot reorder the merge. A fail-stopped shard contributes
// an error for its slot; healthy shards still list. Documents dropped
// between a shard's id listing and the info read are skipped — the
// listing is a snapshot per shard, not a global one.
func (r *Router) List() ([]DocEntry, error) {
	perShard := make([][]DocEntry, r.n)
	errs := make([]error, r.n)
	var wg sync.WaitGroup
	for i, st := range r.stores {
		wg.Add(1)
		go func(i int, st *store.Store) {
			defer wg.Done()
			for _, id := range st.Docs() {
				info, err := st.Get(id)
				if err != nil {
					if errors.Is(err, store.ErrNotFound) {
						continue
					}
					errs[i] = fmt.Errorf("shard %d: %w", i, err)
					return
				}
				perShard[i] = append(perShard[i], DocEntry{Doc: info.Doc, LSN: info.LSN, Digest: info.Digest, Shard: i})
			}
		}(i, st)
	}
	wg.Wait()
	var all []DocEntry
	for _, entries := range perShard {
		all = append(all, entries...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Doc < all[b].Doc })
	return all, errors.Join(errs...)
}

// Docs lists every document id across all shards, sorted.
func (r *Router) Docs() []string {
	var ids []string
	for _, st := range r.stores {
		ids = append(ids, st.Docs()...)
	}
	sort.Strings(ids)
	return ids
}

// LSNs returns each shard's current LSN, in shard order.
func (r *Router) LSNs() []uint64 {
	lsns := make([]uint64, r.n)
	for i, st := range r.stores {
		lsns[i] = st.LSN()
	}
	return lsns
}

// Close closes every shard, joining their errors.
func (r *Router) Close() error {
	errs := make([]error, r.n)
	for i, st := range r.stores {
		if err := st.Close(); err != nil {
			errs[i] = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return errors.Join(errs...)
}
