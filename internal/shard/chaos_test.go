package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"xmlconflict/internal/faultinject"
	"xmlconflict/internal/store"
)

// The shard chaos suite drills the fail-stop domain: a kill-site fault
// on one shard's durability path must poison exactly that shard —
// every other shard keeps accepting and acknowledging commits. This is
// the sharded form of the store's own "never acknowledge what recovery
// cannot read back" invariant: the blast radius of a mid-commit crash
// is one WAL, not the document space.

// killShard drives one update into victimDoc with a panic fault armed
// at site, recovering the injected panic the way xserve's containment
// boundary would.
func killShard(t *testing.T, r *Router, victimDoc, site string) {
	t.Helper()
	faultinject.Arm(site, faultinject.Fault{Kind: faultinject.KindPanic, Times: 1})
	defer faultinject.Reset()
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := rec.(*faultinject.Panic); !ok {
				panic(rec)
			}
		}
	}()
	r.SubmitCtx(context.Background(), victimDoc, store.Op{Kind: "insert", Pattern: "/a", X: "<x/>"})
	t.Fatalf("site %s: update returned without panicking", site)
}

func testShardFailStopIsolation(t *testing.T, site string) {
	t.Cleanup(faultinject.Reset)
	const shards = 4
	r := openTest(t, t.TempDir(), Options{Shards: shards, Store: store.Options{Fsync: store.FsyncAlways}})
	ctx := context.Background()

	docs := make([]string, shards)
	for i := 0; i < shards; i++ {
		docs[i] = docOnShard(t, r, i)
		if _, err := r.CreateCtx(ctx, docs[i], "<a/>"); err != nil {
			t.Fatal(err)
		}
	}

	const victim = 2
	killShard(t, r, docs[victim], site)

	// The victim shard is fail-stopped: its documents answer ErrClosed.
	if _, err := r.SubmitCtx(ctx, docs[victim], store.Op{Kind: "insert", Pattern: "/a", X: "<y/>"}); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("victim shard after %s kill: err=%v, want ErrClosed", site, err)
	}
	// Every other shard still serves commits, concurrently, race-clean.
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		if i == victim {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				if _, err := r.SubmitCtx(ctx, docs[i], store.Op{Kind: "insert", Pattern: "/a", X: "<z/>"}); err != nil {
					t.Errorf("healthy shard %d rejected an update after shard %d died: %v", i, victim, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	// The cross-shard listing still gathers the healthy shards and
	// reports (not hides) the dead one.
	entries, err := r.List()
	if err == nil {
		// Listing may succeed if the victim's in-memory doc map is
		// still readable; what matters is the healthy docs are present.
		t.Log("List succeeded post-kill (victim reads still served from memory)")
	}
	found := map[string]bool{}
	for _, e := range entries {
		found[e.Doc] = true
	}
	for i, doc := range docs {
		if i != victim && !found[doc] {
			t.Fatalf("healthy shard %d's doc %s missing from post-kill listing (err=%v)", i, doc, err)
		}
	}
}

func TestChaosShardKillAppendFailStopsOnlyThatShard(t *testing.T) {
	testShardFailStopIsolation(t, "store.append")
}

func TestChaosShardKillFsyncFailStopsOnlyThatShard(t *testing.T) {
	testShardFailStopIsolation(t, "store.fsync")
}

// TestChaosKilledShardRecoversIndependently: after a kill, reopening
// the same directory recovers every shard — including the victim, from
// its own WAL — with all acknowledged commits intact.
func TestChaosKilledShardRecoversIndependently(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	const shards = 4
	r, err := Open(dir, Options{Shards: shards, Store: store.Options{Fsync: store.FsyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	docs := make([]string, shards)
	acked := make([]store.Result, shards)
	for i := 0; i < shards; i++ {
		docs[i] = docOnShard(t, r, i)
		if _, err := r.CreateCtx(ctx, docs[i], "<a/>"); err != nil {
			t.Fatal(err)
		}
		acked[i], err = r.SubmitCtx(ctx, docs[i], store.Op{Kind: "insert", Pattern: "/a", X: "<x/>"})
		if err != nil {
			t.Fatal(err)
		}
	}
	const victim = 1
	killShard(t, r, docs[victim], "store.append")
	// Abandon without Close, as a crash would; reopen the whole space.
	r2 := openTest(t, dir, Options{Shards: shards, Store: store.Options{Fsync: store.FsyncAlways}})
	for i := 0; i < shards; i++ {
		info, err := r2.Get(docs[i])
		if err != nil {
			t.Fatalf("shard %d doc %s lost after recovery: %v", i, docs[i], err)
		}
		if info.Digest != acked[i].Digest || info.LSN != acked[i].LSN {
			t.Fatalf("shard %d recovered digest %.12s lsn %d, want acknowledged %.12s lsn %d",
				i, info.Digest, info.LSN, acked[i].Digest, acked[i].LSN)
		}
	}
}

// TestChaosCrossShardGatherUnderFire exercises List() concurrently
// with writers on every shard under -race: the gather must stay sorted
// and never return a torn entry.
func TestChaosCrossShardGatherUnderFire(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	r := openTest(t, t.TempDir(), Options{Shards: 4})
	ctx := context.Background()
	for i := 0; i < 16; i++ {
		if _, err := r.CreateCtx(ctx, fmt.Sprintf("doc-%02d", i), "<a/>"); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				doc := fmt.Sprintf("doc-%02d", (w*4+i)%16)
				r.SubmitCtx(ctx, doc, store.Op{Kind: "insert", Pattern: "/a", X: "<x/>"})
			}
		}(w)
	}
	for rep := 0; rep < 20; rep++ {
		entries, err := r.List()
		if err != nil {
			t.Fatalf("List under load: %v", err)
		}
		if len(entries) != 16 {
			t.Fatalf("List returned %d entries, want 16", len(entries))
		}
		for i := 1; i < len(entries); i++ {
			if entries[i-1].Doc >= entries[i].Doc {
				t.Fatalf("unsorted gather under load: %q before %q", entries[i-1].Doc, entries[i].Doc)
			}
		}
	}
	close(stop)
	wg.Wait()
}
