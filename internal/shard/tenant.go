package shard

import (
	"errors"
	"strings"
	"sync"

	"xmlconflict/internal/telemetry"
)

// ErrTenantLimit is returned by TenantLimiter.Acquire when a tenant
// already holds its full inflight allowance; servers map it to a 429
// quota envelope so one hot tenant backs off instead of starving the
// rest of the pool.
var ErrTenantLimit = errors.New("shard: tenant inflight limit reached")

// DefaultTenant names requests that carry no tenant signal at all.
const DefaultTenant = "default"

// maxTrackedTenants bounds the limiter's per-tenant state (and the
// cardinality of the tenant.* metric series). Tenants past the cap
// share one overflow bucket: they are still limited — collectively —
// and the overflow is observable, rather than letting an id-spraying
// client grow process memory without bound.
const maxTrackedTenants = 4096

// overflowTenant is the shared bucket for tenants past the cap.
const overflowTenant = "~overflow"

// invalidTenant is the shared bucket for hostile or malformed tenant
// signals. One bucket, not per-value series: an attacker varying a
// hostile header must not mint unbounded metric label cardinality.
const invalidTenant = "~invalid"

// maxTenantLen bounds an accepted tenant id.
const maxTenantLen = 64

// TenantOf extracts the tenant for a request: an explicit X-Tenant
// header value wins; otherwise a "tenant--doc" name prefix on the
// document id; otherwise DefaultTenant.
//
// The header is attacker-controlled and the result flows into metric
// label values and quota keys, so it is sanitized, not trusted: ids
// longer than maxTenantLen or containing anything outside
// [A-Za-z0-9._-] (control bytes, label separators like '|' and '=',
// path characters) fold into the shared invalidTenant bucket — the
// request is still admitted and counted, under a name that cannot
// corrupt the telemetry line protocol or explode series cardinality.
func TenantOf(header, doc string) string {
	if header != "" {
		return sanitizeTenant(header)
	}
	if i := strings.Index(doc, "--"); i > 0 {
		return sanitizeTenant(doc[:i])
	}
	return DefaultTenant
}

// sanitizeTenant admits a well-formed tenant id unchanged and folds
// everything else into invalidTenant.
func sanitizeTenant(s string) string {
	if len(s) == 0 || len(s) > maxTenantLen {
		return invalidTenant
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return invalidTenant
		}
	}
	return s
}

// tenantState is one tenant's live accounting.
type tenantState struct {
	inflight int
	m        *telemetry.Metrics // labeled view: tenant.* series for this tenant
}

// TenantLimiter bounds per-tenant inflight operations. The zero limit
// disables limiting (Acquire always admits) but still counts per-
// tenant traffic, so the tenant dimension is observable before quotas
// are turned on.
type TenantLimiter struct {
	max  int
	base *telemetry.Metrics

	mu      sync.Mutex
	tenants map[string]*tenantState
}

// NewTenantLimiter returns a limiter admitting at most max concurrent
// operations per tenant (0 = unlimited). Per-tenant series record
// into labeled views of m: tenant.requests, tenant.rejected,
// tenant.inflight — each suffixed |tenant=<name>.
func NewTenantLimiter(max int, m *telemetry.Metrics) *TenantLimiter {
	return &TenantLimiter{max: max, base: m, tenants: map[string]*tenantState{}}
}

// Limit returns the per-tenant inflight allowance (0 = unlimited).
func (l *TenantLimiter) Limit() int {
	if l == nil {
		return 0
	}
	return l.max
}

// state returns the accounting bucket for tenant. At the tracking cap
// it first evicts an idle (zero-inflight) state to make room — an
// id-spraying client churns the table instead of permanently wedging
// every later legitimate tenant into the overflow bucket. Only when
// every tracked tenant is genuinely in flight does a new tenant fold
// into the shared overflow bucket. Caller holds l.mu.
func (l *TenantLimiter) state(tenant string) *tenantState {
	if ts := l.tenants[tenant]; ts != nil {
		return ts
	}
	if len(l.tenants) >= maxTrackedTenants && tenant != overflowTenant {
		if !l.evictIdleLocked() {
			return l.state(overflowTenant)
		}
	}
	ts := &tenantState{m: l.base.Labeled("tenant", tenant)}
	l.tenants[tenant] = ts
	return ts
}

// evictIdleLocked removes one zero-inflight tenant state, reporting
// whether it found one. The evicted tenant loses nothing but its slot:
// its counters persist in the metrics registry, and its next request
// re-admits it (possibly evicting someone else idle). The overflow
// bucket itself is evictable once drained — it exists only while
// needed. Caller holds l.mu.
func (l *TenantLimiter) evictIdleLocked() bool {
	for name, ts := range l.tenants {
		if ts.inflight == 0 {
			delete(l.tenants, name)
			l.base.Add("tenant.evicted", 1)
			return true
		}
	}
	return false
}

// Acquire admits one operation for tenant, returning a release
// function, or ErrTenantLimit when the tenant's allowance is fully in
// flight. The release function is idempotent-unsafe (call it exactly
// once, typically deferred).
func (l *TenantLimiter) Acquire(tenant string) (func(), error) {
	if l == nil {
		return func() {}, nil
	}
	l.mu.Lock()
	ts := l.state(tenant)
	ts.m.Add("tenant.requests", 1)
	if l.max > 0 && ts.inflight >= l.max {
		ts.m.Add("tenant.rejected", 1)
		l.mu.Unlock()
		return nil, ErrTenantLimit
	}
	ts.inflight++
	ts.m.Gauge("tenant.inflight").Set(int64(ts.inflight))
	l.mu.Unlock()
	return func() {
		l.mu.Lock()
		ts.inflight--
		ts.m.Gauge("tenant.inflight").Set(int64(ts.inflight))
		l.mu.Unlock()
	}, nil
}
