package pattern

import "xmlconflict/internal/xmltree"

// Model returns 𝓜_p, a canonical model of the pattern (Section 2.3): a
// tree with the same shape as p in which every edge — child or descendant —
// becomes a direct parent/child edge, and every wildcard is relabeled with
// the given fresh symbol. There is always an embedding of p into its model,
// so every pattern in P^{//,[],*} is satisfiable.
//
// Model also returns the tree node that is the image of the pattern's
// output node under that embedding.
func (p *Pattern) Model(freshLabel string) (*xmltree.Tree, *xmltree.Node) {
	lbl := func(n *Node) string {
		if n.label == Wildcard {
			return freshLabel
		}
		return n.label
	}
	t := xmltree.New(lbl(p.root))
	var outImg *xmltree.Node
	if p.root == p.out {
		outImg = t.Root()
	}
	var walk func(tn *xmltree.Node, pn *Node)
	walk = func(tn *xmltree.Node, pn *Node) {
		for _, c := range pn.children {
			cn := t.AddChild(tn, lbl(c))
			if c == p.out {
				outImg = cn
			}
			walk(cn, c)
		}
	}
	walk(t.Root(), p.root)
	return t, outImg
}

// ModelInto grafts a copy of the pattern's model under the given node of an
// existing tree and returns the image of the pattern's root. It is used by
// the constructive witness proofs (Lemmas 3, 4 and 6), which extend partial
// witnesses with models of residual subpatterns.
func (p *Pattern) ModelInto(t *xmltree.Tree, parent *xmltree.Node, freshLabel string) *xmltree.Node {
	m, _ := p.Model(freshLabel)
	return t.Graft(parent, m)
}
