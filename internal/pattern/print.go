package pattern

import (
	"sort"
	"strings"
)

// String renders the pattern in the XPath-like syntax of the paper's
// grammar (e/e | e//e | e[e] | e[.//e] | σ | *). The path from the root to
// the output node is rendered as the step spine; every off-spine subtree
// becomes a predicate on its anchor step. The result parses back (via
// internal/xpath) to an equal pattern.
func (p *Pattern) String() string {
	spine := p.Spine()
	onSpine := map[*Node]bool{}
	for _, n := range spine {
		onSpine[n] = true
	}
	var b strings.Builder
	for i, n := range spine {
		if i == 0 {
			b.WriteString("/")
		} else {
			b.WriteString(n.axis.String())
		}
		b.WriteString(n.label)
		var preds []string
		for _, c := range n.children {
			if onSpine[c] {
				continue
			}
			preds = append(preds, predicate(c))
		}
		sort.Strings(preds)
		for _, pr := range preds {
			b.WriteString(pr)
		}
	}
	return b.String()
}

// predicate renders the subtree rooted at n as a predicate [...] on its
// parent step.
func predicate(n *Node) string {
	var b strings.Builder
	b.WriteString("[")
	if n.axis == Descendant {
		b.WriteString(".//")
	}
	writeRel(&b, n)
	b.WriteString("]")
	return b.String()
}

// writeRel renders the subtree at n as a relative path expression whose
// spine follows n's first-listed chain; since predicates may nest, any
// shape is expressible.
func writeRel(b *strings.Builder, n *Node) {
	b.WriteString(n.label)
	var preds []string
	for _, c := range n.children {
		preds = append(preds, predicate(c))
	}
	sort.Strings(preds)
	for _, p := range preds {
		b.WriteString(p)
	}
}
