package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildPaper builds the Figure 2 pattern a[.//c]/b[d][*//f] by hand.
func buildPaper() *Pattern {
	p := New("a")
	p.AddChild(p.Root(), Descendant, "c")
	b := p.AddChild(p.Root(), Child, "b")
	p.AddChild(b, Child, "d")
	s := p.AddChild(b, Child, Wildcard)
	p.AddChild(s, Descendant, "f")
	p.SetOutput(b)
	return p
}

func TestBasicShape(t *testing.T) {
	p := buildPaper()
	if p.Size() != 6 {
		t.Fatalf("size = %d, want 6", p.Size())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.IsLinear() {
		t.Fatalf("branching pattern reported linear")
	}
	labels := p.Labels()
	for _, l := range []string{"a", "b", "c", "d", "f"} {
		if !labels[l] {
			t.Fatalf("missing label %s", l)
		}
	}
	if labels[Wildcard] {
		t.Fatalf("wildcard must not be in Σ_p")
	}
}

func TestIsLinear(t *testing.T) {
	p := New("a")
	b := p.AddChild(p.Root(), Descendant, "b")
	p.SetOutput(b)
	if !p.IsLinear() {
		t.Fatalf("chain with leaf output must be linear")
	}
	// Output not at the leaf: not linear.
	c := p.AddChild(b, Child, "c")
	_ = c
	if p.IsLinear() {
		t.Fatalf("output not at leaf must not be linear")
	}
	p.SetOutput(c)
	if !p.IsLinear() {
		t.Fatalf("chain with leaf output must be linear")
	}
}

func TestSpineAndSeq(t *testing.T) {
	p := buildPaper()
	spine := p.Spine()
	if len(spine) != 2 || spine[0] != p.Root() || spine[1] != p.Output() {
		t.Fatalf("spine wrong: %v", spine)
	}
	s, err := p.Seq(p.Root(), p.Output())
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsLinear() || s.Size() != 2 {
		t.Fatalf("Seq result wrong: %v", s)
	}
	if s.Root().Label() != "a" || s.Output().Label() != "b" || s.Output().Axis() != Child {
		t.Fatalf("Seq labels/axes wrong: %v", s)
	}
	// Seq with unrelated endpoints errors.
	var c *Node
	for _, n := range p.Nodes() {
		if n.Label() == "c" {
			c = n
		}
	}
	if _, err := p.Seq(c, p.Output()); err == nil {
		t.Fatalf("Seq over non-ancestor must fail")
	}
}

func TestSpinePattern(t *testing.T) {
	p := buildPaper()
	sp := p.SpinePattern()
	if !sp.IsLinear() {
		t.Fatalf("spine pattern must be linear")
	}
	if sp.String() != "/a/b" {
		t.Fatalf("spine = %s, want /a/b", sp)
	}
}

func TestSubpattern(t *testing.T) {
	p := buildPaper()
	var star *Node
	for _, n := range p.Nodes() {
		if n.IsWildcard() {
			star = n
		}
	}
	sub := p.Subpattern(star)
	if sub.Size() != 2 || sub.Root().Label() != Wildcard {
		t.Fatalf("subpattern wrong: %v", sub)
	}
	if sub.Root().Children()[0].Label() != "f" || sub.Root().Children()[0].Axis() != Descendant {
		t.Fatalf("subpattern edge wrong")
	}
}

func TestStarLength(t *testing.T) {
	cases := []struct {
		build func() *Pattern
		want  int
	}{
		{func() *Pattern { return New("a") }, 0},
		{func() *Pattern { return New(Wildcard) }, 1},
		{func() *Pattern {
			p := New(Wildcard)
			x := p.AddChild(p.Root(), Child, Wildcard)
			p.SetOutput(x)
			return p
		}, 2},
		{func() *Pattern {
			// * // * / * : descendant edge breaks the chain.
			p := New(Wildcard)
			x := p.AddChild(p.Root(), Descendant, Wildcard)
			y := p.AddChild(x, Child, Wildcard)
			p.SetOutput(y)
			return p
		}, 2},
		{func() *Pattern {
			// a / * / * / b / *
			p := New("a")
			x := p.AddChild(p.Root(), Child, Wildcard)
			y := p.AddChild(x, Child, Wildcard)
			b := p.AddChild(y, Child, "b")
			z := p.AddChild(b, Child, Wildcard)
			p.SetOutput(z)
			return p
		}, 2},
		{func() *Pattern {
			// Branching: two parallel star chains of lengths 1 and 3.
			p := New("a")
			p.AddChild(p.Root(), Child, Wildcard)
			x := p.AddChild(p.Root(), Descendant, Wildcard)
			y := p.AddChild(x, Child, Wildcard)
			p.AddChild(y, Child, Wildcard)
			return p
		}, 3},
	}
	for i, c := range cases {
		if got := c.build().StarLength(); got != c.want {
			t.Errorf("case %d: StarLength = %d, want %d", i, got, c.want)
		}
	}
}

func TestModel(t *testing.T) {
	p := buildPaper()
	m, out := p.Model("z")
	if m.Size() != p.Size() {
		t.Fatalf("model size = %d, want %d", m.Size(), p.Size())
	}
	if out == nil || out.Label() != "b" {
		t.Fatalf("output image wrong: %v", out)
	}
	// Wildcards become the fresh label.
	found := false
	for _, n := range m.Nodes() {
		if n.Label() == "z" {
			found = true
		}
		if n.Label() == Wildcard {
			t.Fatalf("wildcard leaked into model")
		}
	}
	if !found {
		t.Fatalf("fresh label missing from model")
	}
}

func TestClonePreservesOutput(t *testing.T) {
	p := buildPaper()
	q := p.Clone()
	if !Equal(p, q) {
		t.Fatalf("clone not equal to original")
	}
	if q.Output() == p.Output() {
		t.Fatalf("clone shares nodes with original")
	}
	if q.Output().Label() != "b" {
		t.Fatalf("clone output label = %q", q.Output().Label())
	}
}

func TestEqual(t *testing.T) {
	p := buildPaper()
	q := buildPaper()
	if !Equal(p, q) {
		t.Fatalf("identical constructions unequal")
	}
	// Permuting children preserves equality (patterns are unordered).
	r := New("a")
	b := r.AddChild(r.Root(), Child, "b")
	s := r.AddChild(b, Child, Wildcard)
	r.AddChild(s, Descendant, "f")
	r.AddChild(b, Child, "d")
	r.AddChild(r.Root(), Descendant, "c")
	r.SetOutput(b)
	if !Equal(p, r) {
		t.Fatalf("sibling order must not matter")
	}
	// Moving the output matters.
	q.SetOutput(q.Root())
	if Equal(p, q) {
		t.Fatalf("different output markings compared equal")
	}
	// Axis matters.
	u := buildPaper()
	for _, n := range u.Nodes() {
		if n.Label() == "d" {
			n.axis = Descendant
		}
	}
	if Equal(p, u) {
		t.Fatalf("different axes compared equal")
	}
}

func TestAttach(t *testing.T) {
	p := New("r")
	sub := New("x")
	sub.AddChild(sub.Root(), Descendant, "y")
	n := p.Attach(p.Root(), Child, sub)
	if n.Label() != "x" || n.Axis() != Child {
		t.Fatalf("attach root wrong")
	}
	if p.Size() != 3 {
		t.Fatalf("size = %d", p.Size())
	}
	// The attachment is a copy.
	sub.AddChild(sub.Root(), Child, "zzz")
	if p.Size() != 3 {
		t.Fatalf("attach aliased the source")
	}
}

func TestValidateRejectsForeignOutput(t *testing.T) {
	p := New("a")
	q := New("b")
	p.SetOutput(q.Root())
	if err := p.Validate(); err == nil {
		t.Fatalf("foreign output accepted")
	}
}

func TestRandomLinearIsLinear(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomLinear(rng, int(size%20)+1, []string{"a", "b"}, 0.3, 0.4)
		return p.IsLinear() && p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomValid(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Random(rng, RandomConfig{
			Size: int(size%20) + 1, Labels: []string{"a", "b", "c"},
			PWildcard: 0.2, PDescendant: 0.3, PBranch: 0.4,
		})
		if p.Validate() != nil || p.Size() != int(size%20)+1 {
			return false
		}
		cl := p.Clone()
		return Equal(p, cl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestStringLinear(t *testing.T) {
	p := New("a")
	b := p.AddChild(p.Root(), Descendant, "b")
	c := p.AddChild(b, Child, Wildcard)
	p.SetOutput(c)
	if got := p.String(); got != "/a//b/*" {
		t.Fatalf("String = %q, want /a//b/*", got)
	}
}

func TestStringBranching(t *testing.T) {
	p := buildPaper()
	got := p.String()
	want := "/a[.//c]/b[*[.//f]][d]"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
