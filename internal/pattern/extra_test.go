package pattern

import (
	"testing"

	"xmlconflict/internal/xmltree"
)

func TestModelInto(t *testing.T) {
	p := New("x")
	c := p.AddChild(p.Root(), Descendant, Wildcard)
	p.SetOutput(c)
	host := xmltree.MustParse("<r><a/></r>")
	anchor := host.Root().Children()[0]
	root := p.ModelInto(host, anchor, "zz")
	if root.Label() != "x" || root.Parent() != anchor {
		t.Fatalf("ModelInto attached wrong: %s", host)
	}
	if host.Size() != 4 {
		t.Fatalf("size = %d", host.Size())
	}
	// The wildcard instantiated as the fresh label.
	if root.Children()[0].Label() != "zz" {
		t.Fatalf("wildcard not instantiated")
	}
}

func TestNodeParentAccessor(t *testing.T) {
	p := New("a")
	b := p.AddChild(p.Root(), Child, "b")
	if b.Parent() != p.Root() || p.Root().Parent() != nil {
		t.Fatalf("Parent accessor wrong")
	}
}

func TestAxisString(t *testing.T) {
	if Child.String() != "/" || Descendant.String() != "//" {
		t.Fatalf("axis strings wrong")
	}
}

func TestSpineSingleNode(t *testing.T) {
	p := New("a")
	s := p.Spine()
	if len(s) != 1 || s[0] != p.Root() {
		t.Fatalf("Spine of a single node: %v", s)
	}
}
