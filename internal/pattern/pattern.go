// Package pattern implements the tree patterns of Section 2.2 of
// "Conflicting XML Updates" (Raghavachari & Shmueli, EDBT 2006), following
// the formalism of Miklau & Suciu.
//
// A pattern is a tree over Σ ∪ {*} whose edges are partitioned into child
// constraints (EDGES_/) and descendant constraints (EDGES_//), with one
// distinguished output node Ø(p). The full class P^{//,[],*} allows
// branching; the linear class P^{//,*} restricts each node to at most one
// outgoing edge with the output at the leaf.
package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// Wildcard is the label of wildcard pattern nodes (the symbol * ∉ Σ).
const Wildcard = "*"

// Axis is the kind of constraint an edge imposes between a pattern node and
// its parent.
type Axis int

const (
	// Child is a child constraint: the images must be in CHILD(t).
	Child Axis = iota
	// Descendant is a descendant constraint: the images must be in DESC(t).
	Descendant
)

// String renders the axis as its XPath separator ("/" or "//").
func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// Node is a node of a tree pattern. The axis describes the edge from the
// node's parent to the node; it is meaningless on the root.
type Node struct {
	label    string
	axis     Axis
	parent   *Node
	children []*Node
}

// Label returns the node's label ("*" for wildcards).
func (n *Node) Label() string { return n.label }

// IsWildcard reports whether the node is labeled with the wildcard symbol.
func (n *Node) IsWildcard() bool { return n.label == Wildcard }

// Axis returns the constraint on the edge from the node's parent.
func (n *Node) Axis() Axis { return n.axis }

// Parent returns the node's parent, or nil for the root.
func (n *Node) Parent() *Node { return n.parent }

// Children returns the node's children. The slice is owned by the pattern
// and must not be modified.
func (n *Node) Children() []*Node { return n.children }

// Pattern is a tree pattern with a distinguished output node.
type Pattern struct {
	root *Node
	out  *Node
}

// New returns a pattern consisting of a single root node, which is also the
// output node.
func New(rootLabel string) *Pattern {
	r := &Node{label: rootLabel}
	return &Pattern{root: r, out: r}
}

// Root returns the pattern's root node.
func (p *Pattern) Root() *Node { return p.root }

// Output returns the pattern's output node Ø(p).
func (p *Pattern) Output() *Node { return p.out }

// SetOutput marks n as the output node. n must belong to the pattern.
func (p *Pattern) SetOutput(n *Node) {
	p.out = n
}

// AddChild creates a new node attached under parent with the given axis and
// label, and returns it.
func (p *Pattern) AddChild(parent *Node, axis Axis, label string) *Node {
	n := &Node{label: label, axis: axis, parent: parent}
	parent.children = append(parent.children, n)
	return n
}

// Attach grafts a copy of the pattern q (ignoring q's output marking) under
// parent with the given axis, and returns the root of the copy. It is used
// to assemble patterns programmatically, e.g. in the hardness reductions of
// Section 5.
func (p *Pattern) Attach(parent *Node, axis Axis, q *Pattern) *Node {
	return p.attachNode(parent, axis, q.root)
}

func (p *Pattern) attachNode(parent *Node, axis Axis, src *Node) *Node {
	n := p.AddChild(parent, axis, src.label)
	for _, c := range src.children {
		p.attachNode(n, c.axis, c)
	}
	return n
}

// Nodes returns all nodes of the pattern in preorder.
func (p *Pattern) Nodes() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		out = append(out, n)
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(p.root)
	return out
}

// Size returns the number of nodes in the pattern (|p| in the paper).
func (p *Pattern) Size() int { return len(p.Nodes()) }

// Labels returns Σ_p, the set of non-wildcard labels used by the pattern.
func (p *Pattern) Labels() map[string]bool {
	out := map[string]bool{}
	for _, n := range p.Nodes() {
		if n.label != Wildcard {
			out[n.label] = true
		}
	}
	return out
}

// Validate checks structural invariants: the output node belongs to the
// pattern and every label is non-empty.
func (p *Pattern) Validate() error {
	if p.root == nil {
		return fmt.Errorf("pattern: nil root")
	}
	if p.out == nil {
		return fmt.Errorf("pattern: nil output node")
	}
	seen := false
	for _, n := range p.Nodes() {
		if n == p.out {
			seen = true
		}
		if n.label == "" {
			return fmt.Errorf("pattern: empty label")
		}
	}
	if !seen {
		return fmt.Errorf("pattern: output node is not part of the pattern")
	}
	return nil
}

// IsLinear reports whether the pattern belongs to P^{//,*}: every node has
// at most one outgoing edge and the output node is the leaf.
func (p *Pattern) IsLinear() bool {
	n := p.root
	for len(n.children) > 0 {
		if len(n.children) > 1 {
			return false
		}
		n = n.children[0]
	}
	return n == p.out
}

// Spine returns the nodes on the path from the root to the output node,
// inclusive, in root-to-output order.
func (p *Pattern) Spine() []*Node {
	var rev []*Node
	for n := p.out; n != nil; n = n.parent {
		rev = append(rev, n)
	}
	out := make([]*Node, len(rev))
	for i, n := range rev {
		out[len(rev)-1-i] = n
	}
	return out
}

// Seq returns SEQ_from^to: the linear pattern consisting of the nodes on
// the path from `from` down to `to` with the edges between them. `from`
// must be an ancestor-or-self of `to`. The copy's output is `to`.
func (p *Pattern) Seq(from, to *Node) (*Pattern, error) {
	var rev []*Node
	n := to
	for {
		rev = append(rev, n)
		if n == from {
			break
		}
		n = n.parent
		if n == nil {
			return nil, fmt.Errorf("pattern: Seq: %q is not an ancestor of %q", from.label, to.label)
		}
	}
	q := New(rev[len(rev)-1].label)
	cur := q.root
	for i := len(rev) - 2; i >= 0; i-- {
		cur = q.AddChild(cur, rev[i].axis, rev[i].label)
	}
	q.out = cur
	return q, nil
}

// SpinePattern returns SEQ_ROOT(p)^Ø(p), the linear pattern along the
// root-to-output path. By Lemmas 4 and 8 of the paper, conflicts of a
// linear read with a branching update reduce to conflicts with the update's
// spine pattern.
func (p *Pattern) SpinePattern() *Pattern {
	q, err := p.Seq(p.root, p.out)
	if err != nil {
		panic("pattern: SpinePattern: " + err.Error()) // unreachable: root is an ancestor of every node
	}
	return q
}

// Subpattern returns SUBPATTERN_n(p): a copy of the subtree of p rooted at
// n. The copy's output node is its root (the paper permits an arbitrary
// choice).
func (p *Pattern) Subpattern(n *Node) *Pattern {
	q := New(n.label)
	var walk func(dst *Node, src *Node)
	walk = func(dst *Node, src *Node) {
		for _, c := range src.children {
			walk(q.AddChild(dst, c.axis, c.label), c)
		}
	}
	walk(q.root, n)
	return q
}

// Clone returns a deep copy of the pattern, output marking included.
func (p *Pattern) Clone() *Pattern {
	q := &Pattern{}
	var walk func(src *Node, parent *Node) *Node
	walk = func(src *Node, parent *Node) *Node {
		n := &Node{label: src.label, axis: src.axis, parent: parent}
		if parent != nil {
			parent.children = append(parent.children, n)
		}
		if src == p.out {
			q.out = n
		}
		for _, c := range src.children {
			walk(c, n)
		}
		return n
	}
	q.root = walk(p.root, nil)
	return q
}

// StarLength returns STAR-LENGTH(p): the number of nodes in the longest
// chain of the pattern (a maximal run of child edges) in which every node
// is labeled *. It bounds the padding needed by the reparenting operation
// (Definition 10) and hence witness sizes (Lemma 11).
func (p *Pattern) StarLength() int {
	best := 0
	var walk func(n *Node, run int)
	walk = func(n *Node, run int) {
		if n.label == Wildcard {
			run++
		} else {
			run = 0
		}
		if run > best {
			best = run
		}
		for _, c := range n.children {
			if c.axis == Child {
				walk(c, run)
			} else {
				walk(c, 0)
			}
		}
	}
	walk(p.root, 0)
	return best
}

// Equal reports whether two patterns are identical as unordered trees with
// edge kinds and output markings. It is used, e.g., by the common
// subexpression analysis in the program analyzer.
func Equal(p, q *Pattern) bool {
	return canon(p.root, p.out) == canon(q.root, q.out)
}

// canon produces a canonical encoding of a pattern node's subtree,
// including axes and the output marking.
func canon(n *Node, out *Node) string {
	var b strings.Builder
	writeCanon(&b, n, out)
	return b.String()
}

func writeCanon(b *strings.Builder, n *Node, out *Node) {
	b.WriteByte('(')
	b.WriteString(n.axis.String())
	b.WriteString(n.label)
	if n == out {
		b.WriteByte('!')
	}
	if len(n.children) > 0 {
		cs := make([]string, len(n.children))
		for i, c := range n.children {
			cs[i] = canon(c, out)
		}
		sort.Strings(cs)
		for _, c := range cs {
			b.WriteString(c)
		}
	}
	b.WriteByte(')')
}
