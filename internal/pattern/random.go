package pattern

import "math/rand"

// RandomConfig controls random pattern generation; generation is
// deterministic given the rand source.
type RandomConfig struct {
	// Size is the number of pattern nodes (at least 1).
	Size int
	// Labels is the non-wildcard alphabet to draw from.
	Labels []string
	// PWildcard is the probability that a node is labeled *.
	PWildcard float64
	// PDescendant is the probability that an edge is a descendant edge.
	PDescendant float64
	// PBranch is the probability that a new node attaches to a random
	// existing node instead of extending the current spine tip; 0 yields a
	// linear pattern in P^{//,*}.
	PBranch float64
}

// Random generates a random pattern. The output node is the tip of the
// spine built by non-branching steps, so with PBranch == 0 the result is a
// linear pattern with the output at the leaf.
func Random(rng *rand.Rand, cfg RandomConfig) *Pattern {
	if cfg.Size < 1 {
		cfg.Size = 1
	}
	if len(cfg.Labels) == 0 {
		cfg.Labels = []string{"a"}
	}
	lbl := func() string {
		if rng.Float64() < cfg.PWildcard {
			return Wildcard
		}
		return cfg.Labels[rng.Intn(len(cfg.Labels))]
	}
	axis := func() Axis {
		if rng.Float64() < cfg.PDescendant {
			return Descendant
		}
		return Child
	}
	p := New(lbl())
	tip := p.root
	all := []*Node{p.root}
	for len(all) < cfg.Size {
		if rng.Float64() < cfg.PBranch {
			parent := all[rng.Intn(len(all))]
			all = append(all, p.AddChild(parent, axis(), lbl()))
		} else {
			tip = p.AddChild(tip, axis(), lbl())
			all = append(all, tip)
		}
	}
	p.out = tip
	return p
}

// RandomLinear generates a random linear pattern in P^{//,*}.
func RandomLinear(rng *rand.Rand, size int, labels []string, pWildcard, pDescendant float64) *Pattern {
	return Random(rng, RandomConfig{
		Size:        size,
		Labels:      labels,
		PWildcard:   pWildcard,
		PDescendant: pDescendant,
	})
}
