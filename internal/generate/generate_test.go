package generate

import (
	"math/rand"
	"testing"

	"xmlconflict/internal/containment"
	"xmlconflict/internal/match"
	"xmlconflict/internal/xpath"
)

func TestInventoryShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inv := Inventory(rng, 50, 0.3)
	books := match.Eval(xpath.MustParse("inventory/book"), inv)
	if len(books) != 50 {
		t.Fatalf("books = %d, want 50", len(books))
	}
	low := match.Eval(xpath.MustParse("//book[.//low]"), inv)
	if len(low) == 0 || len(low) >= 50 {
		t.Fatalf("low-stock books = %d; want a strict fraction", len(low))
	}
	// Every book has a quantity.
	q := match.Eval(xpath.MustParse("inventory/book/quantity"), inv)
	if len(q) != 50 {
		t.Fatalf("quantities = %d", len(q))
	}
}

func TestInventoryDeterministic(t *testing.T) {
	a := Inventory(rand.New(rand.NewSource(9)), 10, 0.5)
	b := Inventory(rand.New(rand.NewSource(9)), 10, 0.5)
	if a.String() != b.String() {
		t.Fatalf("same seed produced different inventories")
	}
}

func TestLabels(t *testing.T) {
	ls := Labels(3)
	if len(ls) != 3 || ls[0] != "l0" || ls[2] != "l2" {
		t.Fatalf("Labels = %v", ls)
	}
}

func TestLinearPairShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		r, u := LinearPair(rng, 6)
		if !r.IsLinear() || !u.IsLinear() {
			t.Fatalf("LinearPair produced branching patterns")
		}
		if r.Size() != 6 || u.Size() != 6 {
			t.Fatalf("sizes = %d, %d", r.Size(), u.Size())
		}
	}
}

func TestDeletablePattern(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		p := DeletablePattern(rng, 3, 0.4)
		if p.Output() == p.Root() {
			t.Fatalf("deletable pattern selects the root")
		}
	}
}

func TestHardPairNotContained(t *testing.T) {
	for n := 2; n <= 4; n++ {
		p, q := HardPair(n)
		if ok, counter := containment.Contained(p, q); ok {
			t.Fatalf("HardPair(%d): expected non-containment", n)
		} else if counter == nil {
			t.Fatalf("HardPair(%d): no counterexample", n)
		}
		// The other direction holds: a chain of markers scatters trivially.
		if ok, _ := containment.Contained(q, p); !ok {
			t.Fatalf("HardPair(%d): q ⊆ p expected", n)
		}
	}
	// Degenerate first member: identical constraints.
	p1, q1 := HardPair(1)
	if ok, _ := containment.Contained(p1, q1); !ok {
		t.Fatalf("HardPair(1) must be contained")
	}
}

func TestDocumentScaleSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{10, 100, 1000} {
		d := DocumentScale(rng, n)
		if d.Size() != n {
			t.Fatalf("size = %d, want %d", d.Size(), n)
		}
	}
}
