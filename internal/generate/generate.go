// Package generate builds synthetic workloads for the examples, tests, and
// the experiment harness: Figure-1-style inventory documents, random
// tree/pattern families with tunable shape knobs, and hard instance
// families for the NP-hardness experiments (E7/E8).
//
// The paper evaluates no datasets (it is a theory paper), so these
// generators sweep the structural parameters its results depend on:
// pattern size, wildcard and descendant-edge density, branching, and
// document size/shape.
package generate

import (
	"fmt"
	"math/rand"

	"xmlconflict/internal/pattern"
	"xmlconflict/internal/xmltree"
)

// Inventory builds a Figure-1-style inventory document: an inventory root
// with book children, each carrying a title and a quantity. The paper's
// motivating predicate "quantity < 10" is a value comparison outside the
// label-tree model; as a behaviour-preserving substitution, low-stock
// books carry a <low/> marker child under <quantity>, so the XPath
// //book[.//low] plays the role of //book[.//quantity < 10].
func Inventory(rng *rand.Rand, books int, lowStockFrac float64) *xmltree.Tree {
	t := xmltree.New("inventory")
	for i := 0; i < books; i++ {
		b := t.AddChild(t.Root(), "book")
		t.AddChild(b, "title")
		q := t.AddChild(b, "quantity")
		if rng.Float64() < lowStockFrac {
			t.AddChild(q, "low")
		}
		if rng.Float64() < 0.5 {
			p := t.AddChild(b, "publisher")
			t.AddChild(p, "name")
		}
	}
	return t
}

// Labels returns a deterministic alphabet of n labels l0..l(n-1).
func Labels(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("l%d", i)
	}
	return out
}

// LinearPair draws a random (read, update) pair of linear patterns for the
// PTIME experiments (E3/E4): both in P^{//,*} over a small shared
// alphabet, so that matches and conflicts actually occur.
func LinearPair(rng *rand.Rand, size int) (r, u *pattern.Pattern) {
	labels := []string{"a", "b", "c"}
	r = pattern.RandomLinear(rng, size, labels, 0.25, 0.35)
	u = pattern.RandomLinear(rng, size, labels, 0.25, 0.35)
	return r, u
}

// DeletablePattern draws a random pattern usable by DELETE (its output is
// never the root).
func DeletablePattern(rng *rand.Rand, size int, branch float64) *pattern.Pattern {
	for {
		p := pattern.Random(rng, pattern.RandomConfig{
			Size: size, Labels: []string{"a", "b", "c"},
			PWildcard: 0.25, PDescendant: 0.35, PBranch: branch,
		})
		if p.Output() != p.Root() {
			return p
		}
		if size < 2 {
			size = 2
		}
	}
}

// HardPair returns the n-th member of a containment-hard family:
//
//	p_n = a[.//b_1][.//b_2]…[.//b_n]   (all markers somewhere below a)
//	q_n = a[.//b_1/b_2/…/b_n]          (the markers form one chain)
//
// p_n ⊄ q_n for every n ≥ 2 (markers may be scattered), so the Theorem
// 4/6 reductions of these pairs are genuine conflict instances whose
// exhaustive-search cost grows rapidly with n, while the reduction itself
// and the containment check stay cheap. For n = 1 the two patterns
// coincide and containment holds.
func HardPair(n int) (p, q *pattern.Pattern) {
	p = pattern.New("a")
	for i := 1; i <= n; i++ {
		p.AddChild(p.Root(), pattern.Descendant, fmt.Sprintf("b%d", i))
	}
	q = pattern.New("a")
	cur := q.AddChild(q.Root(), pattern.Descendant, "b1")
	for i := 2; i <= n; i++ {
		cur = q.AddChild(cur, pattern.Child, fmt.Sprintf("b%d", i))
	}
	return p, q
}

// DocumentScale builds a family of documents of increasing size with the
// same shape statistics, for the evaluator scaling experiment (E1).
func DocumentScale(rng *rand.Rand, size int) *xmltree.Tree {
	return xmltree.Random(rng, xmltree.RandomConfig{
		Size:      size,
		Labels:    []string{"a", "b", "c", "d"},
		MaxFanout: 8,
		Skew:      0.35,
	})
}
