// Package automata implements the regular-language machinery of
// Section 4.1 of "Conflicting XML Updates". A linear pattern l denotes a
// regular expression ℛ(Ø(l)) over the finite alphabet Σ_{l,l'} — each child
// edge contributes one symbol, each descendant edge a (.)* gap — and two
// linear patterns match strongly iff L(r1) ∩ L(r2) ≠ ∅, weakly iff
// L(r1) ∩ L(r2·(.)*) ≠ ∅.
//
// NFAs here are built directly from patterns (never via regexp strings),
// and the product construction returns a shortest word in the
// intersection, which the conflict detector turns into a concrete witness
// tree.
package automata

import (
	"fmt"

	"xmlconflict/internal/pattern"
)

// Any is the transition label standing for (.): any symbol of the finite
// alphabet under consideration.
const Any = ""

// Edge is a transition of an NFA. A label of Any matches every symbol.
type Edge struct {
	From, To int
	Label    string
}

// NFA is a nondeterministic finite automaton with a single start state and
// a single accepting state, sufficient for the ℛ construction.
type NFA struct {
	States int
	Start  int
	Accept int
	Edges  []Edge
}

// FromLinear builds the NFA for ℛ(Ø(l)) of a linear pattern l: reading the
// labels on a root-to-node path of a tree, the automaton accepts exactly
// the paths whose final node can be the image of Ø(l) under an embedding
// of l. The pattern must be linear.
func FromLinear(l *pattern.Pattern) (*NFA, error) {
	if !l.IsLinear() {
		return nil, fmt.Errorf("automata: pattern %v is not linear", l)
	}
	a := &NFA{}
	cur := 0
	a.States = 1
	newState := func() int {
		a.States++
		return a.States - 1
	}
	sym := func(n *pattern.Node) string {
		if n.IsWildcard() {
			return Any
		}
		return n.Label()
	}
	for _, n := range l.Spine() {
		if n.Parent() != nil && n.Axis() == pattern.Descendant {
			// (.)* gap: self-loop before consuming the node's symbol.
			a.Edges = append(a.Edges, Edge{cur, cur, Any})
		}
		next := newState()
		a.Edges = append(a.Edges, Edge{cur, next, sym(n)})
		cur = next
	}
	a.Start = 0
	a.Accept = cur
	return a, nil
}

// WithAnySuffix returns a copy of the NFA extended with a (.)* self-loop on
// the accepting state, realizing r·(.)* for weak matching.
func (a *NFA) WithAnySuffix() *NFA {
	b := &NFA{States: a.States, Start: a.Start, Accept: a.Accept}
	b.Edges = append(append([]Edge(nil), a.Edges...), Edge{a.Accept, a.Accept, Any})
	return b
}

// Intersect decides emptiness of L(a) ∩ L(b) by BFS over the product
// automaton and, when non-empty, returns a shortest word in the
// intersection. Transitions synchronize on concrete symbols; when both
// edges are wildcards the fresh symbol is chosen, so the returned word uses
// only symbols appearing on the automata plus fresh. fresh must not be Any.
//
// Product states are dense integers (qa·|b| + qb), so the BFS bookkeeping
// is flat-array indexed: the matcher is on the hot path of the conflict
// detectors (one product per read edge).
func Intersect(a, b *NFA, fresh string) ([]string, bool) {
	word, ok, _, _ := IntersectStats(a, b, fresh)
	return word, ok
}

// IntersectStats is Intersect additionally reporting the product
// automaton's state count (|a|·|b|) and the number of product states the
// BFS actually discovered — the telemetry behind the "NFA product sizes"
// observability of the linear detectors.
func IntersectStats(a, b *NFA, fresh string) (word []string, ok bool, product, visited int) {
	outA := make([][]Edge, a.States)
	for _, e := range a.Edges {
		outA[e.From] = append(outA[e.From], e)
	}
	outB := make([][]Edge, b.States)
	for _, e := range b.Edges {
		outB[e.From] = append(outB[e.From], e)
	}
	n := a.States * b.States
	id := func(qa, qb int) int { return qa*b.States + qb }
	start := id(a.Start, b.Start)
	goal := id(a.Accept, b.Accept)
	if start == goal {
		return []string{}, true, n, 1
	}
	prev := make([]int32, n)
	sym := make([]string, n)
	for i := range prev {
		prev[i] = -1
	}
	prev[start] = int32(start)
	queue := make([]int32, 0, 16)
	queue = append(queue, int32(start))
	for qi := 0; qi < len(queue); qi++ {
		s := int(queue[qi])
		qa, qb := s/b.States, s%b.States
		for _, ea := range outA[qa] {
			for _, eb := range outB[qb] {
				var w string
				switch {
				case ea.Label == Any && eb.Label == Any:
					w = fresh
				case ea.Label == Any:
					w = eb.Label
				case eb.Label == Any:
					w = ea.Label
				case ea.Label == eb.Label:
					w = ea.Label
				default:
					continue
				}
				ns := id(ea.To, eb.To)
				if prev[ns] >= 0 {
					continue
				}
				prev[ns] = int32(s)
				sym[ns] = w
				if ns == goal {
					var rev []string
					for cur := ns; cur != start; cur = int(prev[cur]) {
						rev = append(rev, sym[cur])
					}
					w := make([]string, len(rev))
					for i, s := range rev {
						w[len(rev)-1-i] = s
					}
					return w, true, n, len(queue) + 1
				}
				queue = append(queue, int32(ns))
			}
		}
	}
	return nil, false, n, len(queue)
}
