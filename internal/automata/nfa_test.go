package automata

import (
	"testing"

	"xmlconflict/internal/xpath"
)

func TestFromLinearRejectsBranching(t *testing.T) {
	if _, err := FromLinear(xpath.MustParse("a[b]/c")); err == nil {
		t.Fatalf("branching pattern accepted")
	}
}

// accepts runs the NFA on a word by explicit subset simulation.
func accepts(a *NFA, word []string) bool {
	out := make([][]Edge, a.States)
	for _, e := range a.Edges {
		out[e.From] = append(out[e.From], e)
	}
	cur := map[int]bool{a.Start: true}
	for _, sym := range word {
		next := map[int]bool{}
		for q := range cur {
			for _, e := range out[q] {
				if e.Label == Any || e.Label == sym {
					next[e.To] = true
				}
			}
		}
		cur = next
	}
	return cur[a.Accept]
}

func TestFromLinearLanguage(t *testing.T) {
	// /a//b/c denotes a (.)* b c.
	a, err := FromLinear(xpath.MustParse("/a//b/c"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		word []string
		want bool
	}{
		{[]string{"a", "b", "c"}, true},
		{[]string{"a", "x", "b", "c"}, true},
		{[]string{"a", "x", "y", "b", "c"}, true},
		{[]string{"a", "c"}, false},
		{[]string{"a", "b"}, false},
		{[]string{"b", "c"}, false},
		{[]string{"a", "b", "c", "d"}, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := accepts(a, c.word); got != c.want {
			t.Errorf("accepts(%v) = %v, want %v", c.word, got, c.want)
		}
	}
}

func TestWildcardTransitions(t *testing.T) {
	a, err := FromLinear(xpath.MustParse("/*/b"))
	if err != nil {
		t.Fatal(err)
	}
	if !accepts(a, []string{"anything", "b"}) {
		t.Fatalf("wildcard root rejected")
	}
	if accepts(a, []string{"anything", "c"}) {
		t.Fatalf("label mismatch accepted")
	}
}

func TestWithAnySuffix(t *testing.T) {
	a, err := FromLinear(xpath.MustParse("/a/b"))
	if err != nil {
		t.Fatal(err)
	}
	if accepts(a, []string{"a", "b", "x"}) {
		t.Fatalf("base automaton must not accept extensions")
	}
	s := a.WithAnySuffix()
	if !accepts(s, []string{"a", "b", "x", "y"}) {
		t.Fatalf("suffixed automaton must accept extensions")
	}
	if accepts(s, []string{"a", "c", "x"}) {
		t.Fatalf("suffix must not forgive the prefix")
	}
	// The original is unchanged.
	if accepts(a, []string{"a", "b", "x"}) {
		t.Fatalf("WithAnySuffix mutated its receiver")
	}
}

func TestIntersectFindsShortestWord(t *testing.T) {
	a, _ := FromLinear(xpath.MustParse("/a//c"))
	b, _ := FromLinear(xpath.MustParse("/a/b/c"))
	w, ok := Intersect(a, b, "zz")
	if !ok {
		t.Fatalf("intersection empty")
	}
	if len(w) != 3 || w[0] != "a" || w[1] != "b" || w[2] != "c" {
		t.Fatalf("word = %v, want [a b c]", w)
	}
	if !accepts(a, w) || !accepts(b, w) {
		t.Fatalf("returned word rejected by an operand")
	}
}

func TestIntersectEmpty(t *testing.T) {
	a, _ := FromLinear(xpath.MustParse("/a/b"))
	b, _ := FromLinear(xpath.MustParse("/a/c"))
	if _, ok := Intersect(a, b, "zz"); ok {
		t.Fatalf("disjoint languages intersected")
	}
}

func TestIntersectUsesFreshForDoubleWildcard(t *testing.T) {
	a, _ := FromLinear(xpath.MustParse("/*"))
	b, _ := FromLinear(xpath.MustParse("/*"))
	w, ok := Intersect(a, b, "zz")
	if !ok || len(w) != 1 || w[0] != "zz" {
		t.Fatalf("word = %v, ok = %v", w, ok)
	}
}

func TestIntersectDescendantGaps(t *testing.T) {
	// //x ∩ /a/b/x: gap must be filled with the other side's labels.
	a, _ := FromLinear(xpath.MustParse("//x"))
	b, _ := FromLinear(xpath.MustParse("/a/b/x"))
	w, ok := Intersect(a, b, "zz")
	if !ok {
		t.Fatalf("intersection empty")
	}
	if len(w) != 3 || w[0] != "a" || w[1] != "b" || w[2] != "x" {
		t.Fatalf("word = %v", w)
	}
}
