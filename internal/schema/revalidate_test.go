package schema

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xmlconflict/internal/generate"
	"xmlconflict/internal/ops"
	"xmlconflict/internal/xmltree"
	"xmlconflict/internal/xpath"
)

func TestRevalidateInsertBasics(t *testing.T) {
	s := MustParse(inventorySchema)
	inv := xmltree.MustParse("<inventory><book><title/><quantity/></book></inventory>")
	// Legal insert: a publisher (optional, absent).
	ins := ops.Insert{P: xpath.MustParse("//book"), X: xmltree.MustParse("<publisher><name/></publisher>")}
	after, err := s.ApplyValidated(inv, ins)
	if err != nil {
		t.Fatalf("legal insert rejected: %v", err)
	}
	if err := s.Validate(after); err != nil {
		t.Fatalf("result invalid: %v", err)
	}
	// Illegal: a second title.
	if _, err := s.ApplyValidated(inv, ops.Insert{P: xpath.MustParse("//book"), X: xmltree.MustParse("<title/>")}); err == nil {
		t.Fatalf("duplicate title accepted")
	}
	// Illegal: payload internally invalid (publisher without name).
	if _, err := s.ApplyValidated(inv, ops.Insert{P: xpath.MustParse("//book"), X: xmltree.MustParse("<publisher/>")}); err == nil {
		t.Fatalf("invalid payload accepted")
	}
	// Original untouched.
	if inv.Size() != 4 {
		t.Fatalf("input mutated")
	}
}

func TestRevalidateDeleteBasics(t *testing.T) {
	s := MustParse(inventorySchema)
	inv := xmltree.MustParse("<inventory><book><title/><quantity/><publisher><name/></publisher></book></inventory>")
	// Legal: delete the optional publisher.
	if _, err := s.ApplyValidated(inv, ops.Delete{P: xpath.MustParse("//publisher")}); err != nil {
		t.Fatalf("legal delete rejected: %v", err)
	}
	// Illegal: delete the required quantity.
	if _, err := s.ApplyValidated(inv, ops.Delete{P: xpath.MustParse("//quantity")}); err == nil {
		t.Fatalf("illegal delete accepted")
	}
}

func TestApplyValidatedRejectsInvalidInput(t *testing.T) {
	s := MustParse(inventorySchema)
	bad := xmltree.MustParse("<inventory><zzz/></inventory>")
	if _, err := s.ApplyValidated(bad, ops.Delete{P: xpath.MustParse("//zzz")}); err == nil {
		t.Fatalf("invalid input accepted")
	}
}

// TestIncrementalMatchesFullRevalidation is the load-bearing property:
// for random valid documents and random updates, incremental
// revalidation agrees with re-running the full validator.
func TestIncrementalMatchesFullRevalidation(t *testing.T) {
	s := MustParse(inventorySchema + "restock:\n")
	exprs := []string{
		"//book", "//quantity", "//publisher", "//book[.//low]", "/inventory",
	}
	payloads := []string{
		"<restock/>", "<title/>", "<low/>", "<publisher><name/></publisher>", "<book><title/><quantity/></book>",
	}
	f := func(seed int64, del bool) bool {
		rng := rand.New(rand.NewSource(seed))
		inv := generate.Inventory(rng, rng.Intn(6)+1, 0.5)
		if !s.Valid(inv) {
			t.Logf("generator produced invalid inventory")
			return false
		}
		var u ops.Update
		if del {
			p := xpath.MustParse(exprs[rng.Intn(len(exprs))])
			if p.Output() == p.Root() {
				return true
			}
			u = ops.Delete{P: p}
		} else {
			u = ops.Insert{
				P: xpath.MustParse(exprs[rng.Intn(len(exprs))]),
				X: xmltree.MustParse(payloads[rng.Intn(len(payloads))]),
			}
		}
		after, incErr := s.ApplyValidated(inv, u)
		full, err := ops.ApplyCopy(u, inv)
		if err != nil {
			return false
		}
		fullErr := s.Validate(full)
		if (incErr == nil) != (fullErr == nil) {
			t.Logf("disagreement: incremental=%v full=%v (update %s %s)", incErr, fullErr, u.Kind(), u.Pattern())
			return false
		}
		if incErr == nil && !xmltree.Isomorphic(after, full) {
			t.Logf("results differ")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}
