package schema_test

import (
	"fmt"

	"xmlconflict/internal/core"
	"xmlconflict/internal/ops"
	"xmlconflict/internal/schema"
	"xmlconflict/internal/xmltree"
	"xmlconflict/internal/xpath"
)

func ExampleSchema_Validate() {
	s := schema.MustParse(`
root library
library: book*
book: title
title:
`)
	good := xmltree.MustParse("<library><book><title/></book></library>")
	bad := xmltree.MustParse("<library><book/></library>")
	fmt.Println(s.Validate(good))
	fmt.Println(s.Validate(bad))
	// Output:
	// <nil>
	// schema: element "book" has 0 "title" children, needs at least 1
}

func ExampleSchema_SatisfiablePattern() {
	s := schema.MustParse(`
root library
library: book*
book: title
title:
`)
	fmt.Println(s.SatisfiablePattern(xpath.MustParse("//book/title")))
	fmt.Println(s.SatisfiablePattern(xpath.MustParse("/library/title")))
	// Output:
	// true
	// false
}

func ExampleDetectUnderSchema() {
	s := schema.MustParse(`
root library
library: book*
book: title
title:
`)
	// Inserting a title directly under the library can never happen on a
	// valid document, so the schema dismisses the conflict statically.
	read := ops.Read{P: xpath.MustParse("//title")}
	ins := ops.Insert{P: xpath.MustParse("/library/title"), X: xmltree.MustParse("<x/>")}
	v, _ := schema.DetectUnderSchema(read, ins, ops.NodeSemantics, s, core.SearchOptions{})
	fmt.Println(v.Conflict, v.Method)
	// Output:
	// false schema-static
}
