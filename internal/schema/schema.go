// Package schema adds schema-aware conflict detection, the Section 6
// extension "Conflicting XML Updates" leaves open ("The complexity of
// conflicts when schema information (for example, DTDs) is available is
// an open problem").
//
// Because the paper's data model is unordered, classic DTD content models
// (regular expressions over ordered children) are replaced by their
// unordered analogue: per-element multiplicity constraints on child
// labels — exactly the information a DTD's ?, *, + operators carry once
// order is erased. A schema restricts the universe of trees; two
// operations schema-conflict when some VALID tree witnesses the conflict.
//
// The package provides
//
//   - a textual schema format and parser (Parse),
//   - validation (Schema.Validate, linear time),
//   - enumeration of valid trees in canonical form (EnumerateValid),
//   - a sound static satisfiability pruner for patterns under a schema
//     (SatisfiablePattern), and
//   - schema-aware conflict detection (DetectUnderSchema): static pruning
//     first, then bounded exhaustive search over valid trees only.
//
// Consistent with the paper's coNP-hardness citations for schema-aware
// XPath problems, the exact decision procedure here is exponential
// (bounded search); the pruner is polynomial and sound but incomplete.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"xmlconflict/internal/telemetry"
	"xmlconflict/internal/xmltree"
)

// ChildRule constrains how many children with a given label an element
// may have. Max < 0 means unbounded.
type ChildRule struct {
	Label string
	Min   int
	Max   int
}

// ElementDecl declares an element: its child rules, and whether child
// labels not mentioned by any rule are permitted (Open).
type ElementDecl struct {
	Children []ChildRule
	Open     bool
}

// Schema is an unordered DTD: allowed root labels plus element
// declarations. Elements whose label has no declaration are invalid
// anywhere in a document.
type Schema struct {
	Roots map[string]bool
	Elems map[string]ElementDecl

	// metrics, when set via Instrument, accumulates revalidation-region
	// telemetry (points revalidated, payload sizes, content re-checks).
	metrics *telemetry.Metrics
}

// Instrument makes the schema record revalidation telemetry into m:
// schema.revalidate.insert_points, schema.revalidate.payload_nodes,
// schema.revalidate.delete_parents, and schema.revalidate.content_checks —
// the "region size" of each incremental revalidation. Pass nil to disable.
func (s *Schema) Instrument(m *telemetry.Metrics) { s.metrics = m }

// Labels returns all labels declared by the schema, sorted.
func (s *Schema) Labels() []string {
	var out []string
	for l := range s.Elems {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Parse reads the textual schema format, one declaration per line:
//
//	root inventory            # allowed document roots
//	inventory: book*          # element with child rules
//	book: title quantity publisher?
//	quantity: low?
//	title:                    # leaf element (no children allowed)
//	publisher: name ...       # trailing "..." opens the element
//
// Multiplicities: bare label = exactly one, ? = at most one, * = any
// number, + = at least one. Blank lines and # comments are ignored.
func Parse(src string) (*Schema, error) {
	s := &Schema{Roots: map[string]bool{}, Elems: map[string]ElementDecl{}}
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		if idx := strings.Index(line, "#"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lineNo := i + 1
		if rest, ok := strings.CutPrefix(line, "root "); ok {
			for _, r := range strings.Fields(rest) {
				s.Roots[r] = true
			}
			continue
		}
		name, body, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("schema: line %d: expected \"name: children\" or \"root ...\"", lineNo)
		}
		name = strings.TrimSpace(name)
		if name == "" || strings.ContainsAny(name, " \t") {
			return nil, fmt.Errorf("schema: line %d: bad element name %q", lineNo, name)
		}
		if _, dup := s.Elems[name]; dup {
			return nil, fmt.Errorf("schema: line %d: duplicate declaration of %s", lineNo, name)
		}
		decl := ElementDecl{}
		seen := map[string]bool{}
		for _, item := range strings.Fields(body) {
			if item == "..." {
				decl.Open = true
				continue
			}
			rule := ChildRule{Min: 1, Max: 1}
			switch {
			case strings.HasSuffix(item, "?"):
				rule.Label, rule.Min, rule.Max = item[:len(item)-1], 0, 1
			case strings.HasSuffix(item, "*"):
				rule.Label, rule.Min, rule.Max = item[:len(item)-1], 0, -1
			case strings.HasSuffix(item, "+"):
				rule.Label, rule.Min, rule.Max = item[:len(item)-1], 1, -1
			default:
				rule.Label = item
			}
			if rule.Label == "" {
				return nil, fmt.Errorf("schema: line %d: bad child item %q", lineNo, item)
			}
			if seen[rule.Label] {
				return nil, fmt.Errorf("schema: line %d: duplicate child rule for %s", lineNo, rule.Label)
			}
			seen[rule.Label] = true
			decl.Children = append(decl.Children, rule)
		}
		s.Elems[name] = decl
	}
	if len(s.Elems) == 0 {
		return nil, fmt.Errorf("schema: no element declarations")
	}
	for name := range s.Roots {
		if _, ok := s.Elems[name]; !ok {
			return nil, fmt.Errorf("schema: root %s is not declared", name)
		}
	}
	if len(s.Roots) == 0 {
		// Every declared element may be a root.
		for name := range s.Elems {
			s.Roots[name] = true
		}
	}
	// Child labels must be declared (an undeclared child could never be
	// valid, making a Min > 0 rule unsatisfiable).
	for name, decl := range s.Elems {
		for _, r := range decl.Children {
			if _, ok := s.Elems[r.Label]; !ok {
				return nil, fmt.Errorf("schema: element %s references undeclared child %s", name, r.Label)
			}
		}
	}
	return s, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string) *Schema {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate reports the first violation in t, or nil when t conforms to
// the schema. It runs in time linear in |t|.
func (s *Schema) Validate(t *xmltree.Tree) error {
	if !s.Roots[t.Root().Label()] {
		return fmt.Errorf("schema: root label %q is not an allowed root", t.Root().Label())
	}
	var check func(n *xmltree.Node) error
	check = func(n *xmltree.Node) error {
		decl, ok := s.Elems[n.Label()]
		if !ok {
			return fmt.Errorf("schema: undeclared element %q", n.Label())
		}
		counts := map[string]int{}
		for _, c := range n.Children() {
			counts[c.Label()]++
		}
		ruled := map[string]bool{}
		for _, r := range decl.Children {
			ruled[r.Label] = true
			got := counts[r.Label]
			if got < r.Min {
				return fmt.Errorf("schema: element %q has %d %q children, needs at least %d", n.Label(), got, r.Label, r.Min)
			}
			if r.Max >= 0 && got > r.Max {
				return fmt.Errorf("schema: element %q has %d %q children, allows at most %d", n.Label(), got, r.Label, r.Max)
			}
		}
		if !decl.Open {
			for l := range counts {
				if !ruled[l] {
					return fmt.Errorf("schema: element %q does not allow %q children", n.Label(), l)
				}
			}
		}
		for _, c := range n.Children() {
			if err := check(c); err != nil {
				return err
			}
		}
		return nil
	}
	return check(t.Root())
}

// Valid reports whether t conforms to the schema.
func (s *Schema) Valid(t *xmltree.Tree) bool { return s.Validate(t) == nil }
