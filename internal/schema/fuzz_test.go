package schema

import (
	"testing"

	"xmlconflict/internal/xmltree"
)

// FuzzParse checks schema parsing robustness: no panics, and every
// accepted schema validates its own small enumerated instances.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"root a\na: b?\nb:",
		"a: b* c+\nb:\nc:",
		"root inventory\ninventory: book*\nbook: title\ntitle:",
		"a: ...\nb:",
		"a: b\n",
		"root q",
		"a: a?",
		"# comment only",
		"a:\na:",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse(src)
		if err != nil {
			return
		}
		count := 0
		s.EnumerateValid(4, func(tr *xmltree.Tree) bool {
			if err := s.Validate(tr); err != nil {
				t.Fatalf("enumerated invalid tree %s under accepted schema:\n%s", tr.XML(), src)
			}
			count++
			return count < 50
		})
	})
}
