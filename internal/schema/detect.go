package schema

import (
	"fmt"
	"time"

	"xmlconflict/internal/core"
	"xmlconflict/internal/ops"
	"xmlconflict/internal/telemetry"
	"xmlconflict/internal/xmltree"
)

// DetectUnderSchema decides whether the read and the update conflict on
// some SCHEMA-VALID document. (The updated document need not remain
// valid — revalidation is a separate concern, cf. the paper's reference
// to schema-based revalidation.)
//
// The paper leaves the complexity of schema-aware conflict detection
// open; this implementation is: sound polynomial pruning first (an
// update whose pattern cannot fire on any valid tree never conflicts; a
// delete cannot conflict with a read whose pattern is unsatisfiable), then
// bounded exhaustive search over valid trees only. Positive verdicts
// carry a valid witness; negative search verdicts are marked incomplete
// because no witness-size bound is known for the schema-aware problem.
func DetectUnderSchema(r ops.Read, u ops.Update, sem ops.Semantics, s *Schema, opts core.SearchOptions) (core.Verdict, error) {
	if err := r.P.Validate(); err != nil {
		return core.Verdict{}, fmt.Errorf("schema: invalid read pattern: %w", err)
	}
	if err := u.Pattern().Validate(); err != nil {
		return core.Verdict{}, fmt.Errorf("schema: invalid %s pattern: %w", u.Kind(), err)
	}
	m := opts.Stats
	m.Add("detect.calls", 1)
	telemetry.Emit(opts.Tracer, "detect.method",
		telemetry.F("method", "schema"),
		telemetry.F("kind", u.Kind()),
		telemetry.F("semantics", sem.String()),
		telemetry.F("read_size", r.P.Size()),
		telemetry.F("update_size", u.Pattern().Size()))
	if !s.SatisfiablePattern(u.Pattern()) {
		m.Add("schema.static_prunes", 1)
		telemetry.Emit(opts.Tracer, "detect.verdict",
			telemetry.F("conflict", false),
			telemetry.F("method", "schema-static"),
			telemetry.F("complete", true),
			telemetry.F("candidates", 0),
			telemetry.F("detail", "the update pattern cannot fire on any schema-valid document"))
		return core.Verdict{
			Method:   "schema-static",
			Complete: true,
			Detail:   "the update pattern cannot fire on any schema-valid document",
		}, nil
	}
	if u.Kind() == "delete" && !s.SatisfiablePattern(r.P) {
		// Deletion only removes nodes, so R stays empty on valid trees.
		m.Add("schema.static_prunes", 1)
		telemetry.Emit(opts.Tracer, "detect.verdict",
			telemetry.F("conflict", false),
			telemetry.F("method", "schema-static"),
			telemetry.F("complete", true),
			telemetry.F("candidates", 0),
			telemetry.F("detail", "the read pattern is unsatisfiable under the schema"))
		return core.Verdict{
			Method:   "schema-static",
			Complete: true,
			Detail:   "the read pattern is unsatisfiable under the schema and deletions cannot add results",
		}, nil
	}

	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = core.WitnessBound(r, u) // heuristic only: no proven bound under schemas
	}
	maxCand := opts.MaxCandidates
	if maxCand <= 0 {
		maxCand = core.DefaultMaxCandidates
	}
	telemetry.Emit(opts.Tracer, "search.start",
		telemetry.F("max_nodes", maxNodes),
		telemetry.F("max_candidates", maxCand),
		telemetry.F("schema", true))
	opts.Progress.Start("schema-search", int64(maxCand))
	checker := ops.NewChecker(sem, r, u, nil, m)
	var witness *xmltree.Tree
	var checkErr error
	examined := 0
	truncated, deadlined, starved, canceled := false, false, false, false
	s.EnumerateValid(maxNodes, func(t *xmltree.Tree) bool {
		if examined%64 == 0 {
			if opts.Ctx != nil {
				if err := opts.Ctx.Err(); err != nil {
					checkErr = fmt.Errorf("schema: search canceled: %w", err)
					canceled = true
					return false
				}
			}
			if !opts.Deadline.IsZero() && !time.Now().Before(opts.Deadline) {
				deadlined = true
				return false
			}
		}
		if !opts.Steps.Take() {
			starved = true
			return false
		}
		examined++
		opts.Progress.Step(1)
		if examined > maxCand {
			truncated = true
			return false
		}
		ok, err := checker.Witness(t)
		if err != nil {
			checkErr = err
			return false
		}
		if ok {
			witness = t
			return false
		}
		return true
	})
	opts.Progress.Finish()
	m.Add("schema.candidates", int64(examined))
	if hits, misses := checker.CacheCounts(); hits+misses > 0 {
		m.Add("match.cache_hits", hits)
		m.Add("match.cache_misses", misses)
	}
	if canceled {
		return core.Verdict{
			Method:     "schema-search",
			Reason:     core.ReasonCanceled,
			Detail:     fmt.Sprintf("search canceled after %d candidates", examined),
			Candidates: examined,
		}, checkErr
	}
	if checkErr != nil {
		return core.Verdict{}, checkErr
	}
	if witness != nil {
		telemetry.Emit(opts.Tracer, "detect.verdict",
			telemetry.F("conflict", true),
			telemetry.F("method", "schema-search"),
			telemetry.F("complete", true),
			telemetry.F("candidates", examined),
			telemetry.F("witness_nodes", witness.Size()))
		return core.Verdict{
			Conflict:   true,
			Witness:    witness,
			Method:     "schema-search",
			Complete:   true,
			Detail:     fmt.Sprintf("valid witness found after %d candidates", examined),
			Candidates: examined,
		}, nil
	}
	if truncated {
		m.Add("schema.truncated", 1)
	}
	// Never complete: the schema-aware witness-size bound is the paper's
	// open problem. The reason says which limit actually ended the sweep
	// so callers can tell a budgeted answer from the intrinsic one.
	reason := core.ReasonNoBound
	detail := fmt.Sprintf("no valid witness among %d trees of <= %d nodes", examined, maxNodes)
	switch {
	case truncated:
		reason = core.ReasonCandidateCap
		detail = fmt.Sprintf("search truncated at %d candidates (bound %d nodes)", maxCand, maxNodes)
	case deadlined:
		reason = core.ReasonDeadline
		detail = fmt.Sprintf("deadline passed after %d candidates (bound %d nodes)", examined, maxNodes)
	case starved:
		reason = core.ReasonStepBudget
		detail = fmt.Sprintf("step budget exhausted after %d candidates (bound %d nodes)", examined, maxNodes)
	}
	telemetry.Emit(opts.Tracer, "detect.verdict",
		telemetry.F("conflict", false),
		telemetry.F("method", "schema-search"),
		telemetry.F("complete", false),
		telemetry.F("candidates", examined),
		telemetry.F("reason", reason))
	return core.Verdict{Method: "schema-search", Complete: false, Reason: reason, Detail: detail, Candidates: examined}, nil
}

// ValidityPreserving searches for a schema-valid document that the update
// turns invalid. It returns (true, nil) when no such document exists
// within the search bounds (preservation is then likely but, absent a
// bound, not proven), or (false, witness) with a valid document whose
// update violates the schema. This connects conflict detection to the
// incremental-revalidation line of work the paper cites.
func (s *Schema) ValidityPreserving(u ops.Update, maxNodes, maxCandidates int) (bool, *xmltree.Tree, error) {
	if maxNodes <= 0 {
		maxNodes = 2 * u.Pattern().Size()
	}
	if maxCandidates <= 0 {
		maxCandidates = core.DefaultMaxCandidates
	}
	var witness *xmltree.Tree
	var applyErr error
	examined := 0
	s.EnumerateValid(maxNodes, func(t *xmltree.Tree) bool {
		examined++
		if examined > maxCandidates {
			return false
		}
		after, err := ops.ApplyCopy(u, t)
		if err != nil {
			applyErr = err
			return false
		}
		if !s.Valid(after) {
			witness = t
			return false
		}
		return true
	})
	if applyErr != nil {
		return false, nil, applyErr
	}
	if witness != nil {
		return false, witness, nil
	}
	return true, nil, nil
}
