package schema

import (
	"xmlconflict/internal/pattern"
)

// SatisfiablePattern is a sound, polynomial-time pruner: when it returns
// false, no schema-valid tree admits an embedding of p, so any operation
// guarded by p can never fire on valid documents. When it returns true
// the pattern MAY be satisfiable (the check propagates per-node label
// candidates along the pattern's edges and ignores multiplicity
// constraints, so it over-approximates).
//
// In the unrestricted model every pattern is satisfiable (Section 2.3:
// the model 𝓜_p); under a schema this is no longer so, which is exactly
// the Section 6 observation that satisfiability and conflict detection
// intertwine once DTDs enter the picture.
func (s *Schema) SatisfiablePattern(p *pattern.Pattern) bool {
	// childAllowed[a]: the set of labels permitted as a child of a.
	childAllowed := map[string]map[string]bool{}
	for name, decl := range s.Elems {
		set := map[string]bool{}
		if decl.Open {
			for other := range s.Elems {
				set[other] = true
			}
		} else {
			for _, r := range decl.Children {
				if r.Max != 0 {
					set[r.Label] = true
				}
			}
		}
		childAllowed[name] = set
	}
	// reach[a]: labels reachable from a by one or more child steps.
	reach := map[string]map[string]bool{}
	for name := range s.Elems {
		seen := map[string]bool{}
		stack := []string{}
		for c := range childAllowed[name] {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for c := range childAllowed[cur] {
				if !seen[c] {
					seen[c] = true
					stack = append(stack, c)
				}
			}
		}
		reach[name] = seen
	}

	labelFits := func(n *pattern.Node, l string) bool {
		return n.IsWildcard() || n.Label() == l
	}
	// Top-down candidate propagation.
	cands := map[*pattern.Node]map[string]bool{}
	rootCands := map[string]bool{}
	for r := range s.Roots {
		if labelFits(p.Root(), r) {
			rootCands[r] = true
		}
	}
	if len(rootCands) == 0 {
		return false
	}
	cands[p.Root()] = rootCands
	ok := true
	var down func(n *pattern.Node)
	down = func(n *pattern.Node) {
		if !ok {
			return
		}
		for _, c := range n.Children() {
			set := map[string]bool{}
			for a := range cands[n] {
				var pool map[string]bool
				if c.Axis() == pattern.Child {
					pool = childAllowed[a]
				} else {
					pool = reach[a]
				}
				for l := range pool {
					if labelFits(c, l) {
						set[l] = true
					}
				}
			}
			if len(set) == 0 {
				ok = false
				return
			}
			cands[c] = set
			down(c)
		}
	}
	down(p.Root())
	return ok
}
