package schema

import (
	"sort"

	"xmlconflict/internal/xmltree"
)

// EnumerateValid invokes fn on every schema-valid tree with at most
// maxNodes nodes — each isomorphism class exactly once, in order of
// increasing size — until fn returns false. It is the schema-restricted
// analogue of core.EnumerateTrees and powers DetectUnderSchema's search:
// restricting the universe to valid trees shrinks the search space, often
// drastically (experiment E13).
func (s *Schema) EnumerateValid(maxNodes int, fn func(*xmltree.Tree) bool) {
	e := newValidEnum(s)
	roots := make([]string, 0, len(s.Roots))
	for r := range s.Roots {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	for size := 1; size <= maxNodes; size++ {
		for _, root := range roots {
			if !e.stream(root, size, func(t *venc) bool { return fn(t.build()) }) {
				return
			}
		}
	}
}

// CountValid returns the number of valid isomorphism classes with at most
// maxNodes nodes, saturating at cap.
func (s *Schema) CountValid(maxNodes, cap int) int {
	count := 0
	s.EnumerateValid(maxNodes, func(*xmltree.Tree) bool {
		count++
		return count < cap
	})
	return count
}

// venc is a canonical valid-subtree skeleton.
type venc struct {
	label string
	kids  []*venc
}

func (v *venc) build() *xmltree.Tree {
	t := xmltree.New(v.label)
	var add func(parent *xmltree.Node, e *venc)
	add = func(parent *xmltree.Node, e *venc) {
		for _, k := range e.kids {
			add(t.AddChild(parent, k.label), k)
		}
	}
	add(t.Root(), v)
	return t
}

// validEnum generates valid subtrees per (label, exact size), memoized.
type validEnum struct {
	s *Schema
	// childLabels[l]: the labels that may appear as children of l, in
	// canonical order, with their multiplicity bounds.
	childLabels map[string][]ChildRule
	memo        map[[2]interface{}][]*venc
}

func newValidEnum(s *Schema) *validEnum {
	e := &validEnum{s: s, childLabels: map[string][]ChildRule{}, memo: map[[2]interface{}][]*venc{}}
	all := s.Labels()
	for name, decl := range s.Elems {
		ruled := map[string]ChildRule{}
		for _, r := range decl.Children {
			ruled[r.Label] = r
		}
		var rules []ChildRule
		if decl.Open {
			for _, l := range all {
				if r, ok := ruled[l]; ok {
					rules = append(rules, r)
				} else {
					rules = append(rules, ChildRule{Label: l, Min: 0, Max: -1})
				}
			}
		} else {
			rules = append(rules, decl.Children...)
			sort.Slice(rules, func(i, j int) bool { return rules[i].Label < rules[j].Label })
		}
		e.childLabels[name] = rules
	}
	return e
}

// stream yields every valid subtree rooted at label with exactly size
// nodes; it returns false if fn aborted.
func (e *validEnum) stream(label string, size int, fn func(*venc) bool) bool {
	if size < 1 {
		return true
	}
	rules := e.childLabels[label]
	return e.genChildren(rules, 0, size-1, nil, func(kids []*venc) bool {
		// The kids slice aliases the enumeration's working array and the
		// venc may be memoized: copy before retaining.
		cp := append([]*venc(nil), kids...)
		return fn(&venc{label: label, kids: cp})
	})
}

// trees returns (memoized) all valid subtrees of a label and exact size;
// used as building blocks when a label recurs as a child.
func (e *validEnum) trees(label string, size int) []*venc {
	key := [2]interface{}{label, size}
	if ts, ok := e.memo[key]; ok {
		return ts
	}
	var out []*venc
	e.stream(label, size, func(t *venc) bool { out = append(out, t); return true })
	e.memo[key] = out
	return out
}

// genChildren enumerates child multisets for the rules starting at index
// ri with exactly budget nodes in total, appending to acc.
func (e *validEnum) genChildren(rules []ChildRule, ri, budget int, acc []*venc, fn func([]*venc) bool) bool {
	if ri == len(rules) {
		if budget != 0 {
			return true
		}
		return fn(acc)
	}
	r := rules[ri]
	maxCount := budget // each child costs ≥ 1 node
	if r.Max >= 0 && r.Max < maxCount {
		maxCount = r.Max
	}
	if r.Min > maxCount {
		return true // cannot satisfy the rule within the budget
	}
	for count := r.Min; count <= maxCount; count++ {
		if !e.genLabelGroup(r.Label, count, budget, 1, 0, acc, func(group []*venc, used int) bool {
			return e.genChildren(rules, ri+1, budget-used, group, fn)
		}) {
			return false
		}
	}
	return true
}

// genLabelGroup enumerates non-decreasing (size, rank) sequences of count
// valid subtrees of one label, using at most budget nodes; minSize and
// minRank enforce canonicity. fn receives acc extended with the group and
// the node count used.
func (e *validEnum) genLabelGroup(label string, count, budget, minSize, minRank int, acc []*venc, fn func([]*venc, int) bool) bool {
	if count == 0 {
		return fn(acc, 0)
	}
	for sz := minSize; sz <= budget-(count-1); sz++ {
		ts := e.trees(label, sz)
		start := 0
		if sz == minSize {
			start = minRank
		}
		for rank := start; rank < len(ts); rank++ {
			ok := e.genLabelGroup(label, count-1, budget-sz, sz, rank, append(acc, ts[rank]), func(group []*venc, used int) bool {
				return fn(group, used+sz)
			})
			if !ok {
				return false
			}
		}
	}
	return true
}
