package schema

import (
	"fmt"

	"xmlconflict/internal/ops"
	"xmlconflict/internal/xmltree"
)

// This file implements incremental revalidation after an update — the
// problem of the paper's reference [14] (Raghavachari & Shmueli,
// "Efficient schema-based revalidation of XML", EDBT 2004). For the
// unordered multiplicity schemas used here, validity is a local property:
// an update can only break (a) the content constraint of the nodes that
// gained or lost a child, and (b) the internal validity of freshly
// inserted subtrees. Revalidating after an update therefore costs time
// proportional to the changed region, not the document.

// RevalidateInsert checks that t remains valid after an Insert produced
// the given insertion points, assuming t was valid before the update ran.
// It re-checks only each point's child counts and the inserted payload
// (validated once — all clones are isomorphic). It returns nil when the
// updated document is valid.
func (s *Schema) RevalidateInsert(t *xmltree.Tree, ins ops.Insert, points []*xmltree.Node) error {
	if len(points) == 0 {
		return nil
	}
	// The payload's internal validity: every node of X must be declared
	// and internally consistent. Its root's label must also be admitted
	// as a child of each insertion point, which the content re-check
	// below covers via the counts.
	s.metrics.Add("schema.revalidate.insert_points", int64(len(points)))
	s.metrics.Add("schema.revalidate.payload_nodes", int64(ins.X.Size()))
	if err := s.validateSubtree(ins.X.Root()); err != nil {
		return fmt.Errorf("schema: inserted payload: %w", err)
	}
	for _, n := range points {
		if err := s.checkContent(n); err != nil {
			return err
		}
	}
	return nil
}

// RevalidateDelete checks that t remains valid after a Delete removed
// subtrees whose parents are given, assuming t was valid before. Only the
// parents' content constraints can be affected. Parents that were
// themselves deleted (nested deletion points) are skipped.
func (s *Schema) RevalidateDelete(t *xmltree.Tree, parents []*xmltree.Node) error {
	s.metrics.Add("schema.revalidate.delete_parents", int64(len(parents)))
	for _, p := range parents {
		if p == nil || !t.Contains(p) {
			continue
		}
		if err := s.checkContent(p); err != nil {
			return err
		}
	}
	return nil
}

// checkContent re-checks one node's child-multiplicity constraints.
func (s *Schema) checkContent(n *xmltree.Node) error {
	s.metrics.Add("schema.revalidate.content_checks", 1)
	decl, ok := s.Elems[n.Label()]
	if !ok {
		return fmt.Errorf("schema: undeclared element %q", n.Label())
	}
	counts := map[string]int{}
	for _, c := range n.Children() {
		counts[c.Label()]++
	}
	ruled := map[string]bool{}
	for _, r := range decl.Children {
		ruled[r.Label] = true
		got := counts[r.Label]
		if got < r.Min {
			return fmt.Errorf("schema: element %q has %d %q children, needs at least %d", n.Label(), got, r.Label, r.Min)
		}
		if r.Max >= 0 && got > r.Max {
			return fmt.Errorf("schema: element %q has %d %q children, allows at most %d", n.Label(), got, r.Label, r.Max)
		}
	}
	if !decl.Open {
		for l := range counts {
			if !ruled[l] {
				return fmt.Errorf("schema: element %q does not allow %q children", n.Label(), l)
			}
		}
	}
	return nil
}

// validateSubtree checks a detached subtree's internal validity (its root
// need not be an allowed document root).
func (s *Schema) validateSubtree(n *xmltree.Node) error {
	if err := s.checkContent(n); err != nil {
		return err
	}
	for _, c := range n.Children() {
		if err := s.validateSubtree(c); err != nil {
			return err
		}
	}
	return nil
}

// ApplyValidated applies the update to t only if the result stays valid:
// it runs the update on an identity-preserving copy, revalidates
// incrementally, and returns the updated document or an error describing
// the violation (t is never modified). This is the transactional pattern
// the revalidation line of work supports.
func (s *Schema) ApplyValidated(t *xmltree.Tree, u ops.Update) (*xmltree.Tree, error) {
	if err := s.Validate(t); err != nil {
		return nil, fmt.Errorf("schema: input document invalid: %w", err)
	}
	c := t.Clone()
	c.ClearModified()
	switch v := u.(type) {
	case ops.Insert:
		points, err := v.Apply(c)
		if err != nil {
			return nil, err
		}
		if err := s.RevalidateInsert(c, v, points); err != nil {
			return nil, err
		}
	case *ops.Insert:
		points, err := v.Apply(c)
		if err != nil {
			return nil, err
		}
		if err := s.RevalidateInsert(c, *v, points); err != nil {
			return nil, err
		}
	case ops.Delete, *ops.Delete:
		// Record parents before applying: deletion points vanish.
		del, _ := u.(ops.Delete)
		if pd, ok := u.(*ops.Delete); ok {
			del = *pd
		}
		prePoints := ops.Read{P: del.P}.Eval(c)
		parents := make([]*xmltree.Node, 0, len(prePoints))
		for _, p := range prePoints {
			parents = append(parents, p.Parent())
		}
		if _, err := del.Apply(c); err != nil {
			return nil, err
		}
		if err := s.RevalidateDelete(c, parents); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("schema: unsupported update kind %q", u.Kind())
	}
	return c, nil
}
