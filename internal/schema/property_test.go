package schema

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"xmlconflict/internal/match"
	"xmlconflict/internal/pattern"
	"xmlconflict/internal/xmltree"
)

// randomSchema builds a random well-formed schema over nLabels elements.
func randomSchema(rng *rand.Rand, nLabels int) *Schema {
	s := &Schema{Roots: map[string]bool{}, Elems: map[string]ElementDecl{}}
	labels := make([]string, nLabels)
	for i := range labels {
		labels[i] = fmt.Sprintf("e%d", i)
	}
	for i, l := range labels {
		decl := ElementDecl{Open: rng.Float64() < 0.15}
		// Child rules point only "forward" with some probability, keeping
		// required children acyclic so small valid trees exist.
		for j := i + 1; j < nLabels; j++ {
			if rng.Float64() > 0.5 {
				continue
			}
			r := ChildRule{Label: labels[j]}
			switch rng.Intn(4) {
			case 0:
				r.Min, r.Max = 0, 1 // ?
			case 1:
				r.Min, r.Max = 0, -1 // *
			case 2:
				r.Min, r.Max = 1, -1 // +
			default:
				r.Min, r.Max = 1, 1 // exactly one
			}
			decl.Children = append(decl.Children, r)
		}
		s.Elems[l] = decl
	}
	s.Roots[labels[0]] = true
	if nLabels > 1 && rng.Float64() < 0.5 {
		s.Roots[labels[1]] = true
	}
	return s
}

func TestRandomSchemaEnumerationMatchesBruteForce(t *testing.T) {
	// Property: for random schemas, EnumerateValid yields exactly the
	// valid subset of all trees over the schema's alphabet (up to a small
	// size bound), each class once.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchema(rng, rng.Intn(3)+2)
		labels := s.Labels()
		bound := 5
		enumerated := map[string]bool{}
		s.EnumerateValid(bound, func(tr *xmltree.Tree) bool {
			code := xmltree.Code(tr.Root())
			if enumerated[code] {
				t.Logf("duplicate class %s", tr.XML())
				return false
			}
			if err := s.Validate(tr); err != nil {
				t.Logf("invalid enumerated tree %s: %v", tr.XML(), err)
				return false
			}
			enumerated[code] = true
			return true
		})
		brute := map[string]bool{}
		enumerateAll(labels, bound, func(tr *xmltree.Tree) {
			if s.Valid(tr) {
				brute[xmltree.Code(tr.Root())] = true
			}
		})
		if len(brute) != len(enumerated) {
			t.Logf("schema %v: enumerated %d, brute %d", s.Elems, len(enumerated), len(brute))
			return false
		}
		for c := range brute {
			if !enumerated[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomSchemaSatisfiabilitySound(t *testing.T) {
	// Property: whenever the pruner declares a random pattern
	// unsatisfiable under a random schema, no valid tree (up to a bound)
	// embeds the pattern.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchema(rng, rng.Intn(3)+2)
		labels := append(s.Labels(), "zout") // include a foreign label sometimes
		p := pattern.Random(rng, pattern.RandomConfig{
			Size: rng.Intn(4) + 1, Labels: labels,
			PWildcard: 0.25, PDescendant: 0.35, PBranch: 0.4,
		})
		if s.SatisfiablePattern(p) {
			return true // only soundness of pruning is claimed
		}
		bad := false
		s.EnumerateValid(6, func(tr *xmltree.Tree) bool {
			if match.Embeds(p, tr) {
				bad = true
				t.Logf("pruned pattern %s embeds into valid %s", p, tr.XML())
				return false
			}
			return true
		})
		return !bad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomSchemaValidityOfMutations(t *testing.T) {
	// Cross-check Validate against the enumerator from the other side:
	// mutating a valid tree's node label to a random one and re-checking
	// keeps Validate self-consistent (no panics, deterministic verdict).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchema(rng, rng.Intn(3)+2)
		var sample *xmltree.Tree
		count := 0
		s.EnumerateValid(5, func(tr *xmltree.Tree) bool {
			count++
			if rng.Intn(count) == 0 {
				sample = tr
			}
			return count < 50
		})
		if sample == nil {
			return true
		}
		nodes := sample.Nodes()
		n := nodes[rng.Intn(len(nodes))]
		sample.Relabel(n, "zalien")
		if err := s.Validate(sample); err == nil {
			t.Logf("alien label accepted: %s", sample.XML())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
