package schema

import (
	"strings"
	"testing"

	"xmlconflict/internal/xmltree"
	"xmlconflict/internal/xpath"
)

const inventorySchema = `
# Figure-1-style inventory schema.
root inventory
inventory: book*
book: title quantity publisher?
quantity: low?
title:
publisher: name
name:
low:
`

func TestParseBasics(t *testing.T) {
	s := MustParse(inventorySchema)
	if !s.Roots["inventory"] || len(s.Roots) != 1 {
		t.Fatalf("roots = %v", s.Roots)
	}
	book := s.Elems["book"]
	if len(book.Children) != 3 {
		t.Fatalf("book rules = %v", book.Children)
	}
	var pub ChildRule
	for _, r := range book.Children {
		if r.Label == "publisher" {
			pub = r
		}
	}
	if pub.Min != 0 || pub.Max != 1 {
		t.Fatalf("publisher? rule = %+v", pub)
	}
	inv := s.Elems["inventory"]
	if inv.Children[0].Min != 0 || inv.Children[0].Max != -1 {
		t.Fatalf("book* rule = %+v", inv.Children[0])
	}
}

func TestParseMultiplicities(t *testing.T) {
	s := MustParse("root a\na: b+ c\nb:\nc:")
	var b, c ChildRule
	for _, r := range s.Elems["a"].Children {
		switch r.Label {
		case "b":
			b = r
		case "c":
			c = r
		}
	}
	if b.Min != 1 || b.Max != -1 {
		t.Fatalf("b+ = %+v", b)
	}
	if c.Min != 1 || c.Max != 1 {
		t.Fatalf("bare c = %+v", c)
	}
}

func TestParseOpenElement(t *testing.T) {
	s := MustParse("root a\na: b ...\nb:")
	if !s.Elems["a"].Open {
		t.Fatalf("open marker ignored")
	}
}

func TestParseDefaultsRoots(t *testing.T) {
	s := MustParse("a: b?\nb:")
	if !s.Roots["a"] || !s.Roots["b"] {
		t.Fatalf("all elements should be allowed roots by default: %v", s.Roots)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"# just comments",
		"root a",                // a not declared
		"a: b",                  // b not declared
		"a: b b\nb:",            // duplicate rule
		"a:\na:",                // duplicate declaration
		"no colon here at all ", // malformed
		"a b: c",                // bad name
		"a: ?\nb:",              // empty child label
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestValidate(t *testing.T) {
	s := MustParse(inventorySchema)
	good := []string{
		"<inventory/>",
		"<inventory><book><title/><quantity/></book></inventory>",
		"<inventory><book><title/><quantity><low/></quantity><publisher><name/></publisher></book></inventory>",
	}
	for _, doc := range good {
		if err := s.Validate(xmltree.MustParse(doc)); err != nil {
			t.Errorf("valid doc rejected: %s: %v", doc, err)
		}
	}
	bad := map[string]string{
		"<book><title/><quantity/></book>":                                              "root",
		"<inventory><book><title/></book></inventory>":                                  "quantity",
		"<inventory><book><title/><quantity/><x/></book></inventory>":                   "allow",
		"<inventory><book><title/><title/><quantity/></book></inventory>":               "at most",
		"<inventory><zzz/></inventory>":                                                 "allow",
		"<inventory><book><title/><quantity><low/><low/></quantity></book></inventory>": "at most",
	}
	for doc, frag := range bad {
		err := s.Validate(xmltree.MustParse(doc))
		if err == nil {
			t.Errorf("invalid doc accepted: %s", doc)
			continue
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}
}

func TestValidateOpenElement(t *testing.T) {
	s := MustParse("root a\na: b ...\nb:\nc:")
	if err := s.Validate(xmltree.MustParse("<a><b/><c/></a>")); err != nil {
		t.Fatalf("open element rejected extra declared child: %v", err)
	}
	if err := s.Validate(xmltree.MustParse("<a><c/></a>")); err == nil {
		t.Fatalf("open element must still enforce required children")
	}
	if err := s.Validate(xmltree.MustParse("<a><b/><zzz/></a>")); err == nil {
		t.Fatalf("undeclared element accepted inside open element")
	}
}

func TestEnumerateValidAllValidAndUnique(t *testing.T) {
	s := MustParse(inventorySchema)
	seen := map[string]bool{}
	count := 0
	s.EnumerateValid(8, func(tr *xmltree.Tree) bool {
		count++
		if err := s.Validate(tr); err != nil {
			t.Fatalf("enumerated invalid tree %s: %v", tr.XML(), err)
		}
		code := xmltree.Code(tr.Root())
		if seen[code] {
			t.Fatalf("duplicate class %s", tr.XML())
		}
		seen[code] = true
		return true
	})
	if count == 0 {
		t.Fatalf("nothing enumerated")
	}
}

func TestEnumerateValidIsExhaustive(t *testing.T) {
	// Cross-check against brute-force: filter all trees over the schema's
	// alphabet by validity. Uses a small schema to stay tractable.
	s := MustParse("root a\na: b* c?\nb: c?\nc:")
	valid := map[string]bool{}
	s.EnumerateValid(5, func(tr *xmltree.Tree) bool {
		valid[xmltree.Code(tr.Root())] = true
		return true
	})
	// Brute force: generate trees over {a, b, c} up to 5 nodes.
	brute := map[string]bool{}
	enumerateAll([]string{"a", "b", "c"}, 5, func(tr *xmltree.Tree) {
		if s.Valid(tr) {
			brute[xmltree.Code(tr.Root())] = true
		}
	})
	if len(valid) != len(brute) {
		t.Fatalf("enumerated %d classes, brute force %d", len(valid), len(brute))
	}
	for c := range brute {
		if !valid[c] {
			t.Fatalf("missing class %s", c)
		}
	}
}

// enumerateAll is a tiny local generator of all unordered labeled trees
// (mirrors core.EnumerateTrees without importing core, to keep the
// cross-check independent).
func enumerateAll(labels []string, maxNodes int, fn func(*xmltree.Tree)) {
	var trees func(size int) []*xmltree.Tree
	var forests func(budget, minSize, minIdx int, bySize map[int][]*xmltree.Tree) [][]*xmltree.Tree
	bySize := map[int][]*xmltree.Tree{}
	forests = func(budget, minSize, minIdx int, bySize map[int][]*xmltree.Tree) [][]*xmltree.Tree {
		if budget == 0 {
			return [][]*xmltree.Tree{nil}
		}
		var out [][]*xmltree.Tree
		for s := minSize; s <= budget; s++ {
			ts := bySize[s]
			start := 0
			if s == minSize {
				start = minIdx
			}
			for i := start; i < len(ts); i++ {
				for _, rest := range forests(budget-s, s, i, bySize) {
					out = append(out, append([]*xmltree.Tree{ts[i]}, rest...))
				}
			}
		}
		return out
	}
	trees = func(size int) []*xmltree.Tree {
		var out []*xmltree.Tree
		for _, l := range labels {
			for _, f := range forests(size-1, 1, 0, bySize) {
				t := xmltree.New(l)
				for _, sub := range f {
					t.Graft(t.Root(), sub)
				}
				out = append(out, t)
			}
		}
		return out
	}
	for s := 1; s <= maxNodes; s++ {
		bySize[s] = trees(s)
		for _, t := range bySize[s] {
			fn(t)
		}
	}
}

func TestSatisfiablePattern(t *testing.T) {
	s := MustParse(inventorySchema)
	sat := []string{
		"/inventory",
		"/inventory/book",
		"//book[.//low]",
		"/inventory/book/quantity/low",
		"//low",
		"/*/book/*",
		"//book[title][quantity]",
	}
	for _, e := range sat {
		if !s.SatisfiablePattern(xpath.MustParse(e)) {
			t.Errorf("%s: wrongly pruned", e)
		}
	}
	unsat := []string{
		"/book",                   // book is not an allowed root
		"/inventory/quantity",     // quantity is not a child of inventory
		"//low/low",               // low has no children
		"/inventory/book/low",     // low is nested under quantity
		"//zzz",                   // undeclared label
		"/inventory//name/*",      // name is a leaf
		"/inventory/book/title/低", // undeclared, beyond ASCII
	}
	for _, e := range unsat {
		p, err := xpath.Parse(e)
		if err != nil {
			continue // non-ASCII not parseable; skip
		}
		if s.SatisfiablePattern(p) {
			t.Errorf("%s: should be pruned", e)
		}
	}
}

func TestSatisfiablePatternSoundness(t *testing.T) {
	// Whenever the pruner says unsatisfiable, no valid tree up to a bound
	// embeds the pattern.
	s := MustParse(inventorySchema)
	exprs := []string{
		"/inventory/quantity", "/book", "//low/low", "//publisher/low",
		"/inventory/book/title", "//name",
	}
	for _, e := range exprs {
		p := xpath.MustParse(e)
		if s.SatisfiablePattern(p) {
			continue
		}
		found := false
		s.EnumerateValid(8, func(tr *xmltree.Tree) bool {
			if embedsInto(p, tr) {
				found = true
				return false
			}
			return true
		})
		if found {
			t.Errorf("%s: pruned but satisfiable", e)
		}
	}
}
