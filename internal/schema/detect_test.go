package schema

import (
	"testing"

	"xmlconflict/internal/core"
	"xmlconflict/internal/match"
	"xmlconflict/internal/ops"
	"xmlconflict/internal/pattern"
	"xmlconflict/internal/xmltree"
	"xmlconflict/internal/xpath"
)

// embedsInto adapts match.Embeds for the tests in this package.
func embedsInto(p *pattern.Pattern, t *xmltree.Tree) bool { return match.Embeds(p, t) }

func ins(expr, x string) ops.Insert {
	return ops.Insert{P: xpath.MustParse(expr), X: xmltree.MustParse(x)}
}

func del(expr string) ops.Delete {
	return ops.Delete{P: xpath.MustParse(expr)}
}

func TestSchemaPrunesUnfirableUpdate(t *testing.T) {
	s := MustParse(inventorySchema)
	// Without a schema, this pair conflicts (the detector proves it).
	read := ops.Read{P: xpath.MustParse("//low")}
	u := ins("/inventory/quantity", "<low/>") // quantity directly under inventory: schema-impossible
	v, err := core.Detect(read, u, ops.NodeSemantics, core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Conflict {
		t.Fatalf("schema-free detection should conflict: %+v", v)
	}
	// Under the schema, the insert can never fire.
	vs, err := DetectUnderSchema(read, u, ops.NodeSemantics, s, core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vs.Conflict || !vs.Complete || vs.Method != "schema-static" {
		t.Fatalf("schema should prune the conflict: %+v", vs)
	}
}

func TestSchemaPrunesUnsatisfiableReadVsDelete(t *testing.T) {
	s := MustParse(inventorySchema)
	read := ops.Read{P: xpath.MustParse("//book/low")} // low only lives under quantity
	u := del("//book")
	v, err := core.Detect(read, u, ops.NodeSemantics, core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Conflict {
		t.Fatalf("schema-free detection should conflict")
	}
	vs, err := DetectUnderSchema(read, u, ops.NodeSemantics, s, core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vs.Conflict || !vs.Complete {
		t.Fatalf("schema should prune: %+v", vs)
	}
}

func TestSchemaSearchFindsValidWitness(t *testing.T) {
	s := MustParse(inventorySchema)
	// Restocking genuinely conflicts with //book/* even on valid docs.
	read := ops.Read{P: xpath.MustParse("//book/quantity")}
	u := del("//book[.//low]")
	vs, err := DetectUnderSchema(read, u, ops.NodeSemantics, s, core.SearchOptions{MaxNodes: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !vs.Conflict {
		t.Fatalf("expected a schema-valid conflict witness: %+v", vs)
	}
	if err := s.Validate(vs.Witness); err != nil {
		t.Fatalf("witness is not schema-valid: %v (%s)", err, vs.Witness.XML())
	}
	ok, err := ops.NodeConflictWitness(read, u, vs.Witness)
	if err != nil || !ok {
		t.Fatalf("witness does not witness: %v %v", ok, err)
	}
}

func TestSchemaSearchNegativeIncomplete(t *testing.T) {
	s := MustParse(inventorySchema)
	// Inserting a publisher cannot change //low results, but the schema
	// engine cannot prove it (no known bound): incomplete negative.
	read := ops.Read{P: xpath.MustParse("//low")}
	u := ins("//book", "<publisher><name/></publisher>")
	vs, err := DetectUnderSchema(read, u, ops.NodeSemantics, s, core.SearchOptions{MaxNodes: 7, MaxCandidates: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if vs.Conflict {
		t.Fatalf("no conflict expected: %+v", vs)
	}
	if vs.Complete {
		t.Fatalf("schema-search negatives must be incomplete: %+v", vs)
	}
}

func TestSchemaRestrictionCanKillConflicts(t *testing.T) {
	// The restocking insert conflicts with //book/low in the unrestricted
	// model (a tree could have low directly under book) but not on valid
	// inventories, where low lives under quantity only and the insert
	// adds a restock element, never a low.
	s := MustParse(inventorySchema + "restock:\n")
	read := ops.Read{P: xpath.MustParse("//book/low")}
	u := ins("//book[.//low]", "<low/>")
	v, err := core.Detect(read, u, ops.NodeSemantics, core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Conflict {
		t.Fatalf("unrestricted model should conflict")
	}
	vs, err := DetectUnderSchema(read, u, ops.NodeSemantics, s, core.SearchOptions{MaxNodes: 8, MaxCandidates: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	// The read //book/low is schema-unsatisfiable... but the INSERT can
	// make it true (low inserted under book), so this is NOT prunable and
	// in fact still a conflict: the witness must be a valid tree that the
	// insert mutates into an invalid one the read then sees.
	if !vs.Conflict {
		t.Fatalf("insert of <low/> under book still conflicts (updated doc may be invalid): %+v", vs)
	}
	if err := s.Validate(vs.Witness); err != nil {
		t.Fatalf("witness itself must be valid: %v", err)
	}
}

func TestValidityPreserving(t *testing.T) {
	s := MustParse(inventorySchema)
	// Deleting publishers preserves validity (publisher is optional).
	ok, w, err := s.ValidityPreserving(del("//publisher"), 8, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("deleting optional publishers flagged: %s", w.XML())
	}
	// Deleting quantities breaks validity (quantity is required).
	ok, w, err = s.ValidityPreserving(del("//quantity"), 8, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("deleting required quantity not flagged")
	}
	if s.Valid(w) != true {
		t.Fatalf("counterexample must be valid before the update")
	}
	// Inserting a second title breaks validity.
	ok, _, err = s.ValidityPreserving(ins("//book", "<title/>"), 8, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("inserting duplicate title not flagged")
	}
}

func TestCountValid(t *testing.T) {
	s := MustParse("root a\na: b?\nb:")
	// Valid trees: <a/>, <a><b/></a>. (b alone is not a valid root.)
	if got := s.CountValid(4, 1000); got != 2 {
		t.Fatalf("CountValid = %d, want 2", got)
	}
	// The restriction is drastic versus the unrestricted universe.
	free := core.CountTrees(2, 1) + core.CountTrees(2, 2) + core.CountTrees(2, 3) + core.CountTrees(2, 4)
	if free <= 2 {
		t.Fatalf("sanity: unrestricted count = %d", free)
	}
}
