// Schemaaware: the Section 6 extension in action. A schema (an unordered
// DTD) restricts the universe of documents, and conflicts that exist in
// the unrestricted model can vanish: the witness documents simply cannot
// occur. This example contrasts schema-free and schema-aware verdicts on
// the inventory vocabulary.
//
// Run with:
//
//	go run ./examples/schemaaware
package main

import (
	"fmt"
	"log"

	"xmlconflict"
)

const inventorySchema = `
root inventory
inventory: book*
book: title quantity publisher?
quantity: low?
title:
publisher: name
name:
low:
restock:
`

func main() {
	s := xmlconflict.MustParseSchema(inventorySchema)

	type scenario struct {
		name string
		read string
		upd  xmlconflict.Update
	}
	scenarios := []scenario{
		{
			name: "read //low vs insert <low/> at /inventory/quantity",
			read: "//low",
			upd: xmlconflict.Insert{
				// quantity directly under inventory never occurs in valid
				// documents, so this insert can never fire.
				P: xmlconflict.MustParseXPath("/inventory/quantity"),
				X: xmlconflict.MustParseXML("<low/>"),
			},
		},
		{
			name: "read //book/low vs delete //book",
			// low lives only under quantity in valid documents, so the
			// read is empty on every valid tree and deletion cannot add.
			read: "//book/low",
			upd:  xmlconflict.Delete{P: xmlconflict.MustParseXPath("//book")},
		},
		{
			name: "read //book/quantity vs delete //book[.//low]",
			// A genuine conflict that survives the schema: a valid
			// low-stock inventory witnesses it.
			read: "//book/quantity",
			upd:  xmlconflict.Delete{P: xmlconflict.MustParseXPath("//book[.//low]")},
		},
	}

	for _, sc := range scenarios {
		read := xmlconflict.Read{P: xmlconflict.MustParseXPath(sc.read)}
		free, err := xmlconflict.Detect(read, sc.upd, xmlconflict.NodeSemantics, xmlconflict.SearchOptions{})
		if err != nil {
			log.Fatal(err)
		}
		constrained, err := xmlconflict.DetectUnderSchema(read, sc.upd, xmlconflict.NodeSemantics, s,
			xmlconflict.SearchOptions{MaxNodes: 7, MaxCandidates: 100_000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(sc.name)
		fmt.Printf("  schema-free:  %s\n", free)
		fmt.Printf("  under schema: %s\n", constrained)
		if constrained.Conflict {
			fmt.Printf("  valid witness: %s\n", constrained.Witness.XML())
		}
		fmt.Println()
	}

	// The schema engine also answers a neighbouring question the paper
	// cites (incremental revalidation): does an update preserve validity?
	fmt.Println("validity preservation:")
	for _, upd := range []struct {
		name string
		u    xmlconflict.Update
	}{
		{"delete //publisher (optional)", xmlconflict.Delete{P: xmlconflict.MustParseXPath("//publisher")}},
		{"delete //quantity (required)", xmlconflict.Delete{P: xmlconflict.MustParseXPath("//quantity")}},
		{"insert second <title/> into books", xmlconflict.Insert{
			P: xmlconflict.MustParseXPath("//book"),
			X: xmlconflict.MustParseXML("<title/>"),
		}},
	} {
		ok, w, err := s.ValidityPreserving(upd.u, 8, 100_000)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			fmt.Printf("  %-38s preserves validity (no counterexample found)\n", upd.name)
		} else {
			fmt.Printf("  %-38s BREAKS validity, e.g. on %s\n", upd.name, w.XML())
		}
	}
}
