// Witness: the NP-hardness construction of Section 5, run forward. Pattern
// containment is reduced to conflict detection (Theorems 4 and 6 /
// Figures 7 and 8): given patterns p ⊄ q, the reduction manufactures a
// read/insert pair that conflicts precisely because of the non-
// containment, and the containment counterexample becomes the conflict
// witness.
//
// Run with:
//
//	go run ./examples/witness
package main

import (
	"fmt"
	"log"

	"xmlconflict"
)

func main() {
	// p selects documents whose root has markers b1 and b2 scattered
	// anywhere below; q insists the markers form a chain. p is not
	// contained in q.
	p := xmlconflict.MustParseXPath("a[.//b1][.//b2]")
	q := xmlconflict.MustParseXPath("a[.//b1/b2]")

	ok, counter := xmlconflict.Contained(p, q)
	fmt.Printf("p = %s\nq = %s\np ⊆ q: %v\n", p, q, ok)
	if ok {
		log.Fatal("expected non-containment")
	}
	fmt.Println("containment counterexample:", counter.XML())

	// Theorem 4: build the read-insert instance. It conflicts iff p ⊄ q.
	read, ins := xmlconflict.ReduceNonContainmentToInsert(p, q)
	fmt.Println("\nTheorem 4 reduction:")
	fmt.Println("  read   =", read.P)
	fmt.Println("  insert =", ins.P, "payload", ins.X.XML())

	v, err := xmlconflict.Detect(read, ins, xmlconflict.NodeSemantics, xmlconflict.SearchOptions{
		MaxNodes:      10,
		MaxCandidates: 250_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  blind search verdict:", v)

	// The read pattern of the reduction branches, so detection is
	// NP-complete — blind search may give up. The reduction itself is the
	// polynomial certificate: the Figure 7d witness assembles directly
	// from the containment counterexample.
	witness := xmlconflict.ReductionWitnessInsert(p, q, counter)
	isW, err := xmlconflict.IsConflictWitness(xmlconflict.NodeSemantics, read, ins, witness)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFigure 7d witness:", witness.XML())
	fmt.Println("verifies as a read-insert conflict witness:", isW)

	// And the delete-flavored reduction (Theorem 6 / Figure 8).
	readD, del := xmlconflict.ReduceNonContainmentToDelete(p, q)
	fmt.Println("\nTheorem 6 reduction:")
	fmt.Println("  read   =", readD.P)
	fmt.Println("  delete =", del.P)
	witnessD := xmlconflict.ReductionWitnessDelete(p, q, counter)
	isWD, err := xmlconflict.IsConflictWitness(xmlconflict.NodeSemantics, readD, del, witnessD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  Figure 8c witness:", witnessD.XML())
	fmt.Println("  verifies as a read-delete conflict witness:", isWD)
}
