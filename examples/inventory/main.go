// Inventory: the Figure 1 scenario of the paper. An inventory document
// holds books with quantities; a restocking job inserts <restock/> markers
// into low-stock books while reporting queries run concurrently. The
// conflict detector classifies which queries the restocking can affect —
// statically, before any document is seen.
//
// The paper's predicate //book[.//quantity < 10] compares values, which
// the label-tree model cannot express; low-stock books instead carry a
// <low/> marker under <quantity> (see DESIGN.md, substitutions).
//
// Run with:
//
//	go run ./examples/inventory
package main

import (
	"fmt"
	"log"
	"math/rand"

	"xmlconflict"
	"xmlconflict/internal/generate"
)

func main() {
	// The restocking update from Section 1:
	//   insert t//book[.//low], <restock/>
	restock := xmlconflict.Insert{
		P: xmlconflict.MustParseXPath("//book[.//low]"),
		X: xmlconflict.MustParseXML("<restock/>"),
	}

	// Reporting queries that might run before or after restocking.
	queries := []string{
		"//restock",          // the restocking report itself
		"//book/title",       // unaffected: titles never change
		"//book/quantity",    // unaffected: quantity nodes are not added
		"//quantity/low",     // unaffected by inserting <restock/>
		"//book/*",           // affected: <restock/> is a new child of book
		"/inventory/book",    // unaffected: no new books appear
		"//publisher//name",  // unaffected
		"/inventory/restock", // unaffected: restock lands under book, not inventory
	}

	fmt.Println("restocking update: insert <restock/> at //book[.//low]")
	fmt.Println()
	for _, q := range queries {
		read := xmlconflict.Read{P: xmlconflict.MustParseXPath(q)}
		v, err := xmlconflict.Detect(read, restock, xmlconflict.NodeSemantics, xmlconflict.SearchOptions{})
		if err != nil {
			log.Fatal(err)
		}
		status := "independent — safe to reorder"
		if v.Conflict {
			status = "CONFLICTS — must run in order"
		}
		fmt.Printf("  %-22s %s\n", q, status)
	}

	// Demonstrate on a concrete inventory.
	inv := generate.Inventory(rand.New(rand.NewSource(11)), 6, 0.5)
	fmt.Println()
	fmt.Println("concrete inventory (6 books):")
	fmt.Println(" ", inv.XML())
	points, err := restock.Apply(inv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after restocking (%d low-stock books marked):\n", len(points))
	fmt.Println(" ", inv.XML())

	// The //book/* read really does see the difference; //book/title
	// really does not — on this document and, per the detector, on all
	// others.
	star := xmlconflict.MustParseXPath("//book/*")
	title := xmlconflict.MustParseXPath("//book/title")
	fmt.Printf("\n|//book/*| = %d, |//book/title| = %d after restocking\n",
		len(xmlconflict.Eval(star, inv)), len(xmlconflict.Eval(title, inv)))
}
