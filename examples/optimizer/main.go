// Optimizer: the compiler use case from Section 1 of the paper. A pidgin
// program mixes reads and updates of an XML document; the dependence
// analysis — driven entirely by the conflict detector — tells an
// optimizing compiler which reads can be hoisted past updates and which
// repeated reads are common subexpressions.
//
// Run with:
//
//	go run ./examples/optimizer
package main

import (
	"fmt"
	"log"
	"strings"

	"xmlconflict"
)

// indent prefixes every line for display.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}

// The imperative fragment from Section 1:
//
//	1 x = ...
//	2 y = read $x//A
//	3 insert $x/B, <C/>
//	4 z = read $x//C
const imperative = `
x = doc <x><B/><A/></x>
y = read $x//A
insert $x/B, <C/>
z = read $x//C
`

// The same program with the read of line 4 replaced by $x//D — the paper
// observes this read can be interchanged with the insertion, enabling the
// compiler to fuse it with the traversal of line 2.
const reordered = `
x = doc <x><B/><A/></x>
y = read $x//A
insert $x/B, <C/>
z = read $x//D
`

// The functional fragment from Section 1: the read of $x/*/A before and
// after the insertion returns the same nodes, so let u = y.
const functional = `
x = doc <x><B/><A/></x>
y = read $x/*/A
insert $x/B, <C/>
u = read $x/*/A
`

func main() {
	for _, prog := range []struct{ name, src string }{
		{"imperative (paper lines 1-4)", imperative},
		{"reordered candidate (read //D)", reordered},
		{"functional (CSE candidate)", functional},
	} {
		fmt.Printf("--- %s ---\n", prog.name)
		p, err := xmlconflict.ParseProgram(prog.src)
		if err != nil {
			log.Fatal(err)
		}
		a, err := xmlconflict.AnalyzeProgram(p, xmlconflict.AnalyzeOptions{Sem: xmlconflict.NodeSemantics})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(a.Report())

		// Apply the rewrites the analysis licenses.
		opt, err := xmlconflict.OptimizeProgram(p, xmlconflict.AnalyzeOptions{Sem: xmlconflict.NodeSemantics})
		if err != nil {
			log.Fatal(err)
		}
		if len(opt.Applied) > 0 {
			fmt.Println("optimizer rewrites:")
			for _, act := range opt.Applied {
				fmt.Printf("  %s: %s\n", act.Kind, act.Description)
			}
			fmt.Println("optimized program:")
			fmt.Print(indent(opt.Prog.Source()))
		} else {
			fmt.Println("optimizer rewrites: none applicable")
		}

		docs, reads, err := p.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("execution check:")
		for _, v := range []string{"y", "z", "u"} {
			if res, ok := reads[v]; ok {
				fmt.Printf("  %s = %d node(s)\n", v, len(res))
			}
		}
		fmt.Printf("  $x final: %s\n\n", docs["x"].XML())
	}
}
