// Quickstart: parse two XPath expressions, ask whether the operations
// conflict, and inspect the witness document the detector constructs.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xmlconflict"
)

func main() {
	// The paper's running example (Section 1): a program reads //C from a
	// document and, in between, inserts <C/> under every B child of the
	// root. May the compiler reorder the two?
	read := xmlconflict.Read{P: xmlconflict.MustParseXPath("//C")}
	insert := xmlconflict.Insert{
		P: xmlconflict.MustParseXPath("/*/B"),
		X: xmlconflict.MustParseXML("<C/>"),
	}

	v, err := xmlconflict.Detect(read, insert, xmlconflict.NodeSemantics, xmlconflict.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("read //C vs insert <C/> at /*/B:", v)
	fmt.Println("witness document:", v.Witness.XML())

	// The witness is a real document: run the operations on it and watch
	// the read's result change.
	before := read.Eval(v.Witness)
	after := v.Witness.Clone()
	if _, err := insert.Apply(after); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  |read before insert| = %d, |read after insert| = %d\n",
		len(before), len(read.Eval(after)))

	// A read of //D, however, can never observe this insertion — on any
	// document whatsoever (that is the paper's guarantee, not a test on
	// one input).
	readD := xmlconflict.Read{P: xmlconflict.MustParseXPath("//D")}
	v, err = xmlconflict.Detect(readD, insert, xmlconflict.NodeSemantics, xmlconflict.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("read //D vs insert <C/> at /*/B:", v)

	// Deletions work the same way.
	del := xmlconflict.Delete{P: xmlconflict.MustParseXPath("/a/b")}
	readC := xmlconflict.Read{P: xmlconflict.MustParseXPath("/a/b//c")}
	v, err = xmlconflict.Detect(readC, del, xmlconflict.NodeSemantics, xmlconflict.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("read /a/b//c vs delete /a/b:", v)
	fmt.Println("witness document:", v.Witness.XML())
}
