// Observe: watching the NP-case witness search work. A branching read
// pattern forces Detect into the bounded exhaustive search (Section 5 of
// the paper); attaching the telemetry channels of the observability
// facade shows the search's progress live, streams its decision-trace
// events, and ends with a counter snapshot — candidates examined,
// compiled-pattern cache traffic, minimization savings.
//
// Run with:
//
//	go run ./examples/observe
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"xmlconflict"
)

func main() {
	// A branching read (two predicates) against a delete that cannot
	// fire near it: no small witness exists, so the search has to grind
	// through its whole candidate budget — worth watching.
	read := xmlconflict.Read{P: xmlconflict.MustParseXPath("a[b][c]/d")}
	del := xmlconflict.Delete{P: xmlconflict.MustParseXPath("z/w")}

	st := xmlconflict.NewStats()
	tracer := xmlconflict.NewTextTracer(os.Stderr)
	progress := xmlconflict.NewProgressWriter(os.Stderr, 100*time.Millisecond)

	opts := xmlconflict.SearchOptions{MaxNodes: 7, MaxCandidates: 200_000}.
		WithStats(st).
		WithTracer(tracer).
		WithProgress(progress)

	v, err := xmlconflict.Detect(read, del, xmlconflict.NodeSemantics, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nverdict: %s\n", v)
	fmt.Printf("candidates examined: %d\n\n", v.Candidates)
	fmt.Println("final stats snapshot:")
	fmt.Print(st.Snapshot())
}
