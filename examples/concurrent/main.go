// Concurrent: the Section 6 "complex updates" scenario. Several writers
// want to update the same inventory; which pairs commute on every
// document (and may therefore run in parallel or be reordered freely),
// and which must be serialized? The static decision procedure answers
// without looking at any document — and the program analyzer turns the
// same answers into a staged execution plan.
//
// Run with:
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"log"

	"xmlconflict"
)

func main() {
	updates := []struct {
		name string
		u    xmlconflict.Update
	}{
		{"restock low-stock books", xmlconflict.Insert{
			P: xmlconflict.MustParseXPath("//book[.//low]"),
			X: xmlconflict.MustParseXML("<restock/>"),
		}},
		{"attach audit tag to publishers", xmlconflict.Insert{
			P: xmlconflict.MustParseXPath("//publisher"),
			X: xmlconflict.MustParseXML("<audited/>"),
		}},
		{"drop restock markers", xmlconflict.Delete{
			P: xmlconflict.MustParseXPath("//restock"),
		}},
		{"drop whole low-stock books", xmlconflict.Delete{
			P: xmlconflict.MustParseXPath("//book[.//low]"),
		}},
	}

	fmt.Println("pairwise commutation (value semantics, all documents):")
	for i := 0; i < len(updates); i++ {
		for j := i + 1; j < len(updates); j++ {
			v, err := xmlconflict.UpdateUpdateConflict(updates[i].u, updates[j].u,
				xmlconflict.SearchOptions{MaxNodes: 6, MaxCandidates: 150_000})
			if err != nil {
				log.Fatal(err)
			}
			verdict := "commute"
			switch {
			case v.Conflict:
				verdict = "CONFLICT — must serialize"
			case !v.Complete:
				verdict = "commute not proven — serialize to be safe"
			}
			fmt.Printf("  %-34s × %-34s %s\n", updates[i].name, updates[j].name, verdict)
			if v.Conflict && v.Witness != nil {
				fmt.Printf("    order matters on: %s\n", v.Witness.XML())
			}
		}
	}

	// The same information, consumed as a schedule: express the four
	// updates as a program and stage it.
	src := `
x = doc <inventory><book><title/><quantity><low/></quantity></book></inventory>
insert $x//book[.//low], <restock/>
insert $x//publisher, <audited/>
delete $x//restock
`
	prog, err := xmlconflict.ParseProgram(src)
	if err != nil {
		log.Fatal(err)
	}
	a, err := xmlconflict.AnalyzeProgram(prog, xmlconflict.AnalyzeOptions{Sem: xmlconflict.NodeSemantics})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstaged execution plan for the program form:")
	for i, stage := range a.ParallelSchedule().Stages {
		fmt.Printf("  stage %d:\n", i)
		for _, idx := range stage {
			fmt.Printf("    %s\n", prog.Stmts[idx].Src)
		}
	}
}
