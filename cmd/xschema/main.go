// Command xschema works with unordered-DTD schemas (the Section 6
// "Schema Information" extension of "Conflicting XML Updates"): it
// validates documents, tests pattern satisfiability under a schema, and
// checks whether updates preserve validity.
//
// Usage:
//
//	xschema -s schema.xds validate            # document on stdin
//	xschema -s schema.xds sat <xpath>         # pattern satisfiable?
//	xschema -s schema.xds preserve insert <xpath> <xml>
//	xschema -s schema.xds preserve delete <xpath>
//	xschema -s schema.xds conflict <read-xpath> insert <xpath> <xml>
//	xschema -s schema.xds conflict <read-xpath> delete <xpath>
//
// Exit codes: 0 = yes/valid/no-conflict, 1 = no/invalid/conflict,
// 2 = usage or internal error.
package main

import (
	"flag"
	"fmt"
	"os"

	"xmlconflict"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("xschema", flag.ContinueOnError)
	schemaPath := fs.String("s", "", "schema file (required)")
	maxNodes := fs.Int("max", 8, "search bound for preserve/conflict")
	maxCand := fs.Int("candidates", 100_000, "candidate cap for preserve/conflict")
	trace := fs.Bool("trace", false, "stream JSON-lines decision-trace events to stderr")
	stats := fs.Bool("stats", false, "print a telemetry counter snapshot to stderr afterwards")
	progress := fs.Bool("progress", false, "report live search progress on stderr")
	listen := fs.String("listen", "", "serve /metrics, /debug/pprof, and health probes on this address while running")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *schemaPath == "" || fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "xschema: need -s <schema file> and a subcommand (validate, sat, preserve, conflict)")
		return 2
	}
	src, err := os.ReadFile(*schemaPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xschema: %v\n", err)
		return 2
	}
	s, err := xmlconflict.ParseSchema(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "xschema: %v\n", err)
		return 2
	}

	opts := xmlconflict.SearchOptions{MaxNodes: *maxNodes, MaxCandidates: *maxCand}
	var st *xmlconflict.Stats
	if *stats || *listen != "" {
		st = xmlconflict.NewStats()
		opts = opts.WithStats(st)
		s.Instrument(st)
		if *stats {
			defer func() { fmt.Fprint(os.Stderr, st.Snapshot()) }()
		}
	}
	if *listen != "" {
		obs, addr, err := xmlconflict.ServeObservability(*listen, st)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xschema: %v\n", err)
			return 2
		}
		defer obs.Close()
		fmt.Fprintf(os.Stderr, "xschema: observability on http://%s\n", addr)
	}
	if *trace {
		opts = opts.WithTracer(xmlconflict.NewJSONTracer(os.Stderr))
	}
	if *progress {
		opts = opts.WithProgress(xmlconflict.NewProgressWriter(os.Stderr, 0))
	}

	rest := fs.Args()
	switch rest[0] {
	case "validate":
		doc, err := xmlconflict.ParseXML(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xschema: reading stdin: %v\n", err)
			return 2
		}
		if err := s.Validate(doc); err != nil {
			fmt.Printf("invalid: %v\n", err)
			return 1
		}
		fmt.Println("valid")
		return 0

	case "sat":
		if len(rest) != 2 {
			fmt.Fprintln(os.Stderr, "xschema: sat needs one XPath expression")
			return 2
		}
		p, err := xmlconflict.ParseXPath(rest[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "xschema: %v\n", err)
			return 2
		}
		if s.SatisfiablePattern(p) {
			fmt.Println("possibly satisfiable (the pruner found no obstruction)")
			return 0
		}
		fmt.Println("unsatisfiable under the schema")
		return 1

	case "preserve":
		u, used, err := parseUpdate(rest[1:])
		if err != nil {
			fmt.Fprintf(os.Stderr, "xschema: %v\n", err)
			return 2
		}
		_ = used
		ok, w, err := s.ValidityPreserving(u, *maxNodes, *maxCand)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xschema: %v\n", err)
			return 2
		}
		if ok {
			fmt.Printf("validity preserved (no counterexample within %d nodes)\n", *maxNodes)
			return 0
		}
		fmt.Printf("breaks validity, e.g. on %s\n", w.XML())
		return 1

	case "conflict":
		if len(rest) < 3 {
			fmt.Fprintln(os.Stderr, "xschema: conflict needs <read-xpath> insert|delete ...")
			return 2
		}
		rp, err := xmlconflict.ParseXPath(rest[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "xschema: %v\n", err)
			return 2
		}
		u, _, err := parseUpdate(rest[2:])
		if err != nil {
			fmt.Fprintf(os.Stderr, "xschema: %v\n", err)
			return 2
		}
		v, err := xmlconflict.DetectUnderSchema(xmlconflict.Read{P: rp}, u, xmlconflict.NodeSemantics, s, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xschema: %v\n", err)
			return 2
		}
		fmt.Printf("verdict: %s\n", v)
		if v.Conflict && v.Witness != nil {
			fmt.Printf("valid witness: %s\n", v.Witness.XML())
			return 1
		}
		return 0

	default:
		fmt.Fprintf(os.Stderr, "xschema: unknown subcommand %q\n", rest[0])
		return 2
	}
}

// parseUpdate parses "insert <xpath> <xml>" or "delete <xpath>" argument
// tails.
func parseUpdate(args []string) (xmlconflict.Update, int, error) {
	if len(args) == 0 {
		return nil, 0, fmt.Errorf(`expected "insert <xpath> <xml>" or "delete <xpath>"`)
	}
	switch args[0] {
	case "insert":
		if len(args) < 3 {
			return nil, 0, fmt.Errorf("insert needs <xpath> <xml>")
		}
		p, err := xmlconflict.ParseXPath(args[1])
		if err != nil {
			return nil, 0, err
		}
		x, err := xmlconflict.ParseXMLString(args[2])
		if err != nil {
			return nil, 0, err
		}
		return xmlconflict.Insert{P: p, X: x}, 3, nil
	case "delete":
		if len(args) < 2 {
			return nil, 0, fmt.Errorf("delete needs <xpath>")
		}
		p, err := xmlconflict.ParseXPath(args[1])
		if err != nil {
			return nil, 0, err
		}
		return xmlconflict.Delete{P: p}, 2, nil
	default:
		return nil, 0, fmt.Errorf("unknown update kind %q", args[0])
	}
}
