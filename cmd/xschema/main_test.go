package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

const inventorySchema = `
root inventory
inventory: book*
book: title quantity publisher?
quantity: low?
title:
publisher: name
name:
low:
`

func schemaFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inv.xds")
	if err := os.WriteFile(path, []byte(inventorySchema), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// withIO feeds stdin and swallows stdout.
func withIO(t *testing.T, in string, f func()) {
	t.Helper()
	oldIn, oldOut := os.Stdin, os.Stdout
	defer func() { os.Stdin, os.Stdout = oldIn, oldOut }()
	rIn, wIn, _ := os.Pipe()
	go func() { io.WriteString(wIn, in); wIn.Close() }()
	os.Stdin = rIn
	rOut, wOut, _ := os.Pipe()
	os.Stdout = wOut
	done := make(chan struct{})
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, rOut)
		close(done)
	}()
	f()
	wOut.Close()
	<-done
}

func TestValidateSubcommand(t *testing.T) {
	sf := schemaFile(t)
	var code int
	withIO(t, "<inventory><book><title/><quantity/></book></inventory>", func() {
		code = run([]string{"-s", sf, "validate"})
	})
	if code != 0 {
		t.Fatalf("valid doc: exit %d", code)
	}
	withIO(t, "<inventory><zzz/></inventory>", func() {
		code = run([]string{"-s", sf, "validate"})
	})
	if code != 1 {
		t.Fatalf("invalid doc: exit %d", code)
	}
}

func TestSatSubcommand(t *testing.T) {
	sf := schemaFile(t)
	var code int
	withIO(t, "", func() { code = run([]string{"-s", sf, "sat", "//book/quantity/low"}) })
	if code != 0 {
		t.Fatalf("satisfiable pattern: exit %d", code)
	}
	withIO(t, "", func() { code = run([]string{"-s", sf, "sat", "/inventory/low"}) })
	if code != 1 {
		t.Fatalf("unsatisfiable pattern: exit %d", code)
	}
}

func TestPreserveSubcommand(t *testing.T) {
	sf := schemaFile(t)
	var code int
	withIO(t, "", func() { code = run([]string{"-s", sf, "preserve", "delete", "//publisher"}) })
	if code != 0 {
		t.Fatalf("optional delete: exit %d", code)
	}
	withIO(t, "", func() { code = run([]string{"-s", sf, "preserve", "delete", "//quantity"}) })
	if code != 1 {
		t.Fatalf("required delete: exit %d", code)
	}
	withIO(t, "", func() { code = run([]string{"-s", sf, "preserve", "insert", "//book", "<title/>"}) })
	if code != 1 {
		t.Fatalf("duplicate title insert: exit %d", code)
	}
}

func TestConflictSubcommand(t *testing.T) {
	sf := schemaFile(t)
	var code int
	withIO(t, "", func() {
		code = run([]string{"-s", sf, "conflict", "//book/low", "delete", "//book"})
	})
	if code != 0 {
		t.Fatalf("statically pruned conflict: exit %d", code)
	}
	withIO(t, "", func() {
		code = run([]string{"-s", sf, "-max", "6", "conflict", "//book/quantity", "delete", "//book[.//low]"})
	})
	if code != 1 {
		t.Fatalf("genuine schema conflict: exit %d", code)
	}
}

func TestUsageErrors(t *testing.T) {
	sf := schemaFile(t)
	cases := [][]string{
		nil,
		{"-s", sf},
		{"-s", "/nonexistent/schema", "validate"},
		{"-s", sf, "unknown"},
		{"-s", sf, "sat"},
		{"-s", sf, "sat", "]["},
		{"-s", sf, "preserve"},
		{"-s", sf, "preserve", "insert", "/a"},
		{"-s", sf, "preserve", "replace", "/a"},
		{"-s", sf, "conflict", "//a"},
		{"-s", sf, "conflict", "][", "delete", "/a/b"},
	}
	for _, args := range cases {
		var code int
		withIO(t, "", func() { code = run(args) })
		if code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
	// Bad stdin for validate.
	var code int
	withIO(t, "not xml", func() { code = run([]string{"-s", sf, "validate"}) })
	if code != 2 {
		t.Errorf("bad stdin: exit %d", code)
	}
	// Bad schema content.
	bad := filepath.Join(t.TempDir(), "bad.xds")
	os.WriteFile(bad, []byte("a: undeclared"), 0o644)
	withIO(t, "", func() { code = run([]string{"-s", bad, "validate"}) })
	if code != 2 {
		t.Errorf("bad schema: exit %d", code)
	}
}
