// Command xdep analyzes a pidgin XML-update program (Section 1 of
// "Conflicting XML Updates") for data dependences: it reports which
// statement pairs conflict, which reads a compiler may hoist past updates,
// and which repeated reads are redundant.
//
// Usage:
//
//	xdep [-sem node|tree|value] [-j N] [-O] [-run] [-trace] [-stats]
//	     [-progress] [-listen addr] [-max-input N] [program.xup]
//
// The program is read from the named file, or stdin if none is given;
// -max-input bounds how many bytes are accepted (default 16 MiB) so an
// oversized or runaway input fails cleanly instead of exhausting
// memory.
// With -O the optimizer applies the rewrites the analysis licenses
// (hoisting, common subexpression elimination) and prints the rewritten
// program. With -run the (possibly optimized) program is also executed
// and the read results printed. A parallel schedule — statements grouped
// into concurrently executable stages — is always reported.
//
// Program syntax (one statement per line, # comments):
//
//	x = doc <x><B/><A/></x>
//	y = read $x//A
//	insert $x/B, <C/>
//	z = read $x//C
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"xmlconflict"
	"xmlconflict/internal/cliio"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("xdep", flag.ContinueOnError)
	semName := fs.String("sem", "node", "conflict semantics: node, tree, or value")
	jobs := fs.Int("j", 1, "pairwise analysis workers (0 = GOMAXPROCS); verdicts are identical at any setting")
	deadline := fs.Duration("deadline", 0, "wall-clock budget for the analysis; pairs searched past it are conservatively assumed dependent (reason \"deadline\")")
	exec := fs.Bool("run", false, "also execute the program")
	optimize := fs.Bool("O", false, "apply hoisting and CSE, print the rewritten program")
	trace := fs.Bool("trace", false, "stream JSON-lines decision-trace events to stderr")
	stats := fs.Bool("stats", false, "print a telemetry counter snapshot to stderr afterwards")
	progress := fs.Bool("progress", false, "report live search progress on stderr")
	listen := fs.String("listen", "", "serve /metrics, /debug/pprof, and health probes on this address while running")
	maxInput := fs.Int64("max-input", cliio.DefaultMaxInput, "largest program input accepted, in bytes")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var sem xmlconflict.Semantics
	switch *semName {
	case "node":
		sem = xmlconflict.NodeSemantics
	case "tree":
		sem = xmlconflict.TreeSemantics
	case "value":
		sem = xmlconflict.ValueSemantics
	default:
		fmt.Fprintf(os.Stderr, "xdep: unknown semantics %q\n", *semName)
		return 2
	}

	var src []byte
	var err error
	if fs.NArg() > 0 {
		src, err = cliio.ReadFile(fs.Arg(0), *maxInput)
	} else {
		src, err = cliio.ReadAll(os.Stdin, "stdin", *maxInput)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "xdep: %v\n", err)
		return 2
	}

	prog, err := xmlconflict.ParseProgram(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "xdep: %v\n", err)
		return 2
	}
	var search xmlconflict.SearchOptions
	if *deadline > 0 {
		search = search.WithTimeout(*deadline)
	}
	var st *xmlconflict.Stats
	if *stats || *listen != "" {
		st = xmlconflict.NewStats()
		search = search.WithStats(st)
	}
	if *listen != "" {
		obs, addr, err := xmlconflict.ServeObservability(*listen, st)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xdep: %v\n", err)
			return 2
		}
		defer obs.Close()
		fmt.Fprintf(os.Stderr, "xdep: observability on http://%s\n", addr)
	}
	if *trace {
		search = search.WithTracer(xmlconflict.NewJSONTracer(os.Stderr))
	}
	if *progress {
		search = search.WithProgress(xmlconflict.NewProgressWriter(os.Stderr, 0))
	}
	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The cache pays off even sequentially (programs repeat patterns) and
	// is shared by the -O re-analysis below.
	aopts := xmlconflict.AnalyzeOptions{
		Sem:     sem,
		Search:  search,
		Workers: workers,
		Cache:   xmlconflict.NewDetectorCache(0),
	}
	if st != nil {
		aopts.Cache.Instrument(st)
	}
	analysis, err := xmlconflict.AnalyzeProgram(prog, aopts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xdep: %v\n", err)
		return 2
	}
	if st != nil {
		defer fmt.Fprint(os.Stderr, st.Snapshot())
	}
	fmt.Print(analysis.Report())
	fmt.Println("parallel schedule (statements per concurrent stage):")
	for i, stage := range analysis.ParallelSchedule().Stages {
		fmt.Printf("  stage %d: %v\n", i, stage)
	}

	if *optimize {
		opt, err := xmlconflict.OptimizeProgram(prog, aopts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xdep: optimize: %v\n", err)
			return 2
		}
		fmt.Println("optimizations:")
		if len(opt.Applied) == 0 {
			fmt.Println("  none applicable")
		}
		for _, a := range opt.Applied {
			fmt.Printf("  %s: %s\n", a.Kind, a.Description)
		}
		fmt.Println("optimized program:")
		for _, line := range strings.Split(strings.TrimRight(opt.Prog.Source(), "\n"), "\n") {
			fmt.Println("  " + line)
		}
		prog = opt.Prog
	}

	if *exec {
		docs, reads, err := prog.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "xdep: run: %v\n", err)
			return 2
		}
		fmt.Println("execution:")
		for _, name := range sortedKeys(reads) {
			fmt.Printf("  %s = %d node(s):", name, len(reads[name]))
			for _, n := range reads[name] {
				fmt.Printf(" %s", n.Label())
			}
			fmt.Println()
		}
		for _, name := range sortedKeys(docs) {
			fmt.Printf("  $%s final: %s\n", name, docs[name].XML())
		}
	}
	return 0
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
