package main

import (
	"os"
	"path/filepath"
	"testing"
)

const goodProgram = `
x = doc <x><B/><A/></x>
y = read $x//A
insert $x/B, <C/>
z = read $x//C
`

func writeProgram(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.xup")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeFile(t *testing.T) {
	// Silence stdout noise by redirecting to a pipe we drain.
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old }()

	path := writeProgram(t, goodProgram)
	if code := run([]string{path}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if code := run([]string{"-run", path}); code != 0 {
		t.Fatalf("-run exit = %d", code)
	}
	for _, sem := range []string{"node", "tree", "value"} {
		if code := run([]string{"-sem", sem, path}); code != 0 {
			t.Fatalf("-sem %s exit = %d", sem, code)
		}
	}
}

func TestErrors(t *testing.T) {
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old }()

	if code := run([]string{"-sem", "bogus", writeProgram(t, goodProgram)}); code != 2 {
		t.Fatalf("bad semantics accepted")
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.xup")}); code != 2 {
		t.Fatalf("missing file accepted")
	}
	if code := run([]string{writeProgram(t, "garbage statement")}); code != 2 {
		t.Fatalf("bad program accepted")
	}
}

func TestOptimizeFlag(t *testing.T) {
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old }()

	path := writeProgram(t, `
x = doc <x><B/><A/></x>
y = read $x/*/A
insert $x/B, <C/>
u = read $x/*/A
`)
	if code := run([]string{"-O", "-run", path}); code != 0 {
		t.Fatalf("-O exit = %d", code)
	}
}

func TestMaxInputFlag(t *testing.T) {
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old }()

	path := writeProgram(t, goodProgram)
	// A file larger than -max-input fails cleanly with exit 2.
	if code := run([]string{"-max-input", "8", path}); code != 2 {
		t.Fatalf("oversized program accepted: exit = %d", code)
	}
	// The same file passes under a sufficient cap.
	if code := run([]string{"-max-input", "1048576", path}); code != 0 {
		t.Fatalf("within-cap program rejected: exit = %d", code)
	}

	// The stdin path honors the same bound.
	stdin := os.Stdin
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdin = r
	defer func() { os.Stdin = stdin }()
	go func() {
		w.WriteString(goodProgram)
		w.Close()
	}()
	if code := run([]string{"-max-input", "8"}); code != 2 {
		t.Fatalf("oversized stdin accepted: exit = %d", code)
	}
}
