package main

// Replication surface: with -repl-node/-repl-peers the document store
// becomes one node of a primary/backup cluster (internal/replica). The
// /v1/docs API stays identical for clients; underneath it:
//
//   - Writes commit through the replica node, which ships the WAL
//     frames and blocks for the -repl-ack level. A write landing on a
//     backup is transparently proxied to the primary (one hop,
//     X-Repl-Forwarded guards the loop). If the primary is unreachable
//     and -repl-tentative is on, an insert/delete update is queued
//     optimistically and answered 202 with its queue sequence; its
//     fate is decided by the conflict detector at merge (see
//     GET /v1/repl/merges).
//   - Reads are served locally on every node. A backup stamps
//     X-Replica-Staleness-Ms (time since last primary contact) and
//     refuses with 503 "stale-replica" once that exceeds
//     -repl-staleness.
//   - The replication protocol itself (append/heartbeat/since/state/
//     merge/status) mounts under /v1/repl/.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"xmlconflict/internal/faultinject"
	"xmlconflict/internal/replica"
	"xmlconflict/internal/store"
	"xmlconflict/internal/telemetry/span"
)

// replForwardHeader marks a proxied write so a misdirected hop answers
// instead of bouncing forever.
const replForwardHeader = "X-Repl-Forwarded"

// parsePeers parses the -repl-peers value: "id=url,id=url,...".
func parsePeers(spec string) ([]replica.Peer, error) {
	var peers []replica.Peer
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad peer %q (want id=url)", part)
		}
		peers = append(peers, replica.Peer{ID: strings.TrimSpace(id), URL: strings.TrimRight(strings.TrimSpace(url), "/")})
	}
	if len(peers) == 0 {
		return nil, errors.New("no peers in spec")
	}
	return peers, nil
}

// replSpan stamps the node's replication coordinates on the request
// span, so a trace shows which role/epoch served it.
func (s *server) replSpan(ctx context.Context) {
	if s.node == nil {
		return
	}
	sp := span.FromContext(ctx)
	sp.Set("repl.node", s.node.Self().ID)
	sp.Set("repl.role", s.node.Role().String())
	sp.Set("repl.epoch", s.node.Epoch())
}

// createDoc / dropDoc / submitDoc route a mutation through the replica
// node when replication is on, and straight at the sharded store when
// it is off.
func (s *server) createDoc(ctx context.Context, id, xml string) (store.Result, error) {
	if s.node != nil {
		s.replSpan(ctx)
		return s.node.CreateCtx(ctx, id, xml)
	}
	return s.store.CreateCtx(ctx, id, xml)
}

func (s *server) dropDoc(ctx context.Context, id string) (store.Result, error) {
	if s.node != nil {
		s.replSpan(ctx)
		return s.node.DropCtx(ctx, id)
	}
	return s.store.DropCtx(ctx, id)
}

func (s *server) submitDoc(ctx context.Context, id string, op store.Op) (store.Result, error) {
	if s.node != nil {
		s.replSpan(ctx)
		return s.node.SubmitCtx(ctx, id, op)
	}
	return s.store.SubmitCtx(ctx, id, op)
}

// replRedirect handles a write that the local node cannot commit
// because it is a backup: proxy it to the primary (one hop), or — when
// the primary is unreachable and tentative mode allows — queue it
// optimistically. Returns true when it wrote a response.
func (s *server) replRedirect(w http.ResponseWriter, r *http.Request, err error, doc string, op *store.Op, body any) bool {
	var np *replica.NotPrimaryError
	if s.node == nil || !errors.As(err, &np) {
		return false
	}
	s.metrics.Add("repl.redirects", 1)
	span.FromContext(r.Context()).Flag("repl-redirect")
	if r.Header.Get(replForwardHeader) != "" {
		// Already proxied once and still not at the primary: the
		// topology is mid-failover. Tell the client to retry rather
		// than hop in circles.
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error:   "replica topology is settling; retry",
			Reason:  "no-primary",
			TraceID: traceID(r),
		})
		return true
	}
	if np.Primary.URL != "" {
		if s.proxyToPrimary(w, r, np.Primary, body) {
			return true
		}
	}
	// The primary is unknown or unreachable. Optimistic fallback for
	// plain updates when the operator enabled it; everything else is an
	// honest 503.
	if op != nil && (op.Kind == "insert" || op.Kind == "delete") {
		if seq, qerr := s.node.QueueTentative(doc, *op); qerr == nil {
			s.metrics.Add("repl.tentative_accepted", 1)
			span.FromContext(r.Context()).Flag("repl-tentative")
			writeJSON(w, http.StatusAccepted, map[string]any{
				"doc":       doc,
				"tentative": true,
				"seq":       seq,
				"node":      s.node.Self().ID,
				"detail":    "queued for detector-arbitrated merge; outcome at GET /v1/repl/merges",
				"trace_id":  traceID(r),
			})
			return true
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{
		Error:   np.Error(),
		Reason:  "not-primary",
		TraceID: traceID(r),
	})
	return true
}

// proxyToPrimary replays the request body against the primary and
// streams its answer back. Returns false when the primary could not be
// reached (the caller falls back to tentative/503).
func (s *server) proxyToPrimary(w http.ResponseWriter, r *http.Request, primary replica.Peer, body any) bool {
	b, err := encodeJSON(body)
	if err != nil {
		return false
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.replProxyTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, r.Method, primary.URL+r.URL.Path, bytes.NewReader(b))
	if err != nil {
		return false
	}
	if len(b) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(replForwardHeader, s.node.Self().ID)
	if tenant := r.Header.Get("X-Tenant"); tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	if tp := w.Header().Get("traceparent"); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := s.replHC.Do(req)
	if err != nil {
		s.metrics.Add("repl.proxy_errors", 1)
		return false
	}
	defer resp.Body.Close()
	s.metrics.Add("repl.proxied_writes", 1)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("X-Repl-Proxied-To", primary.ID)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, io.LimitReader(resp.Body, s.maxBody)) //nolint:errcheck // client gone is fine
	return true
}

// encodeJSON marshals a proxy body (nil means an empty body, for
// DELETE).
func encodeJSON(body any) ([]byte, error) {
	if body == nil {
		return nil, nil
	}
	return json.Marshal(body)
}

// replReadGate serves the bounded-staleness contract on reads: a
// backup within -repl-staleness answers with X-Replica-Staleness-Ms;
// one beyond it refuses with 503 "stale-replica" so a client never
// mistakes a partitioned node's state for fresh data. Returns true
// when it wrote the refusal.
func (s *server) replReadGate(w http.ResponseWriter, r *http.Request) bool {
	if s.node == nil {
		return false
	}
	s.replSpan(r.Context())
	lag, ok := s.node.Staleness()
	w.Header().Set("X-Replica-Staleness-Ms", strconv.FormatInt(lag.Milliseconds(), 10))
	if ok {
		return false
	}
	s.metrics.Add("repl.stale_reads_refused", 1)
	span.FromContext(r.Context()).Flag("stale-replica")
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{
		Error: fmt.Sprintf("replica is %s behind the primary (bound %s); retry against the primary",
			lag.Round(time.Millisecond), s.node.StalenessBound()),
		Reason:  "stale-replica",
		TraceID: traceID(r),
	})
	return true
}

// replMinLSNHeadroom is how far past the highest LSN this node knows
// exists (own position, or the primary's announced one) an X-Min-LSN
// may point before the gate refuses immediately instead of waiting.
// A legitimate client stamps an LSN a write reply gave it, so it is at
// most a replication lag behind reality; a value beyond every known
// position plus this slack cannot be satisfied by waiting and would
// only pin a handler for the full budget per request.
const replMinLSNHeadroom = 4096

// replMinLSNGate serves read-your-writes on top of the staleness bound:
// a client that stamps X-Min-LSN with the shard LSN its last write was
// acknowledged at (the "lsn" field of every write reply) waits briefly
// for this replica to reach that position. A replica that cannot within
// the wait budget refuses with 503 "stale-replica" and a Retry-After
// instead of silently serving state from before the client's own write.
// The wait parks on the store's LSN notification rather than polling,
// and a min beyond anything known to exist fails fast. Returns true
// when it wrote a response.
func (s *server) replMinLSNGate(w http.ResponseWriter, r *http.Request, doc string) bool {
	if s.node == nil {
		return false
	}
	h := r.Header.Get("X-Min-LSN")
	if h == "" {
		return false
	}
	min, err := strconv.ParseUint(strings.TrimSpace(h), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad-request", "X-Min-LSN: "+err.Error())
		return true
	}
	shardIdx := s.store.ShardFor(doc)
	st := s.store.Store(shardIdx)
	if st.LSN() >= min {
		return false
	}
	refuse := func() bool {
		s.metrics.Add("repl.min_lsn_refused", 1)
		span.FromContext(r.Context()).Flag("stale-replica")
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error: fmt.Sprintf("replica shard holds lsn %d; the read requires %d (read-your-writes); retry or read the primary",
				st.LSN(), min),
			Reason:  "stale-replica",
			TraceID: traceID(r),
		})
		return true
	}
	if known := s.node.KnownShardLSN(shardIdx); min > known+replMinLSNHeadroom {
		return refuse()
	}
	span.FromContext(r.Context()).Flag("repl-min-lsn-wait")
	if !st.WaitLSN(r.Context(), min, s.replMinLSNWait) {
		if r.Context().Err() != nil {
			s.metrics.Add("serve.canceled", 1)
			return true
		}
		return refuse()
	}
	s.metrics.Add("repl.min_lsn_waits", 1)
	return false
}

// replStoreErr maps replication-layer write failures onto the uniform
// envelope. Returns true when it handled the error.
func (s *server) replStoreErr(w http.ResponseWriter, r *http.Request, err error) bool {
	var fe *replica.FencedError
	var ae *replica.AckError
	switch {
	case errors.As(err, &fe):
		// This node was deposed mid-write: the commit may not survive
		// resync, so the only honest answer is an error.
		s.metrics.Add("serve.errors", 1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error: err.Error(), Reason: "fenced", TraceID: traceID(r),
		})
		return true
	case errors.As(err, &ae):
		// Committed locally, but the replication level was not reached:
		// the client must treat the write as unacknowledged.
		s.metrics.Add("serve.errors", 1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error: err.Error(), Reason: "repl-ack", TraceID: traceID(r),
		})
		return true
	}
	return false
}

// Cluster lifecycle admin surface (behind -repl-admin): joins a node as
// a learner, drains/removes a node, and arms/disarms fault-injection
// sites at runtime — the hooks a partition-soak harness flaps. The
// routes mount on the main mux with patterns more specific than the
// /v1/repl/ protocol subtree, so they win Go's mux precedence.

// replJoinRequest is the POST /v1/repl/join body.
type replJoinRequest struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// replLeaveRequest is the POST /v1/repl/leave body.
type replLeaveRequest struct {
	ID string `json:"id"`
}

// replFaultsRequest is the POST /v1/repl/faults body: arm a spec (the
// same grammar as -faults), disarm one site, or reset everything.
type replFaultsRequest struct {
	Spec   string `json:"spec,omitempty"`
	Disarm string `json:"disarm,omitempty"`
	Reset  bool   `json:"reset,omitempty"`
}

// replAdminErr maps membership-change failures onto the envelope: a
// change submitted to a backup answers 409 "not-primary" naming the
// primary to retry against; anything else is a 503 the operator retries.
func (s *server) replAdminErr(w http.ResponseWriter, r *http.Request, err error) {
	s.metrics.Add("serve.errors", 1)
	var np *replica.NotPrimaryError
	if errors.As(err, &np) {
		writeJSON(w, http.StatusConflict, errorResponse{
			Error: err.Error(), Reason: "not-primary", TraceID: traceID(r),
		})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{
		Error: err.Error(), Reason: "repl-admin", TraceID: traceID(r),
	})
}

func (s *server) handleReplJoin(w http.ResponseWriter, r *http.Request) {
	s.metrics.Add("serve.requests", 1)
	var req replJoinRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.node.Join(r.Context(), req.ID, strings.TrimRight(req.URL, "/")); err != nil {
		s.replAdminErr(w, r, err)
		return
	}
	s.metrics.Add("repl.admin_joins", 1)
	writeJSON(w, http.StatusOK, map[string]any{
		"joined": req.ID, "members": s.node.ClusterSize(), "trace_id": traceID(r),
	})
}

func (s *server) handleReplLeave(w http.ResponseWriter, r *http.Request) {
	s.metrics.Add("serve.requests", 1)
	var req replLeaveRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.node.Leave(r.Context(), req.ID); err != nil {
		s.replAdminErr(w, r, err)
		return
	}
	s.metrics.Add("repl.admin_leaves", 1)
	writeJSON(w, http.StatusOK, map[string]any{
		"left": req.ID, "members": s.node.ClusterSize(), "trace_id": traceID(r),
	})
}

func (s *server) handleReplFaults(w http.ResponseWriter, r *http.Request) {
	s.metrics.Add("serve.requests", 1)
	var req replFaultsRequest
	if !s.decode(w, r, &req) {
		return
	}
	switch {
	case req.Reset:
		faultinject.Reset()
	case req.Disarm != "":
		faultinject.Disarm(req.Disarm)
	case req.Spec != "":
		if err := faultinject.ArmSpec(req.Spec); err != nil {
			writeErr(w, http.StatusBadRequest, "bad-request", "spec: "+err.Error())
			return
		}
	default:
		writeErr(w, http.StatusBadRequest, "bad-request", `need one of "spec", "disarm", "reset"`)
		return
	}
	s.metrics.Add("repl.admin_faults", 1)
	writeJSON(w, http.StatusOK, map[string]any{"sites": faultinject.Sites(), "trace_id": traceID(r)})
}
