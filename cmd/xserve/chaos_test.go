package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xmlconflict/internal/faultinject"
)

// Chaos tests for the daemon: inject faults at the handler and engine
// boundaries and assert the blast radius stays one request (or one batch
// item) while the process keeps serving. Faults are process-global, so
// these tests never run in parallel with each other.

// TestChaosHandlerPanicContained: a panicking handler answers its own
// request with the 500 envelope; the daemon stays healthy and the very
// next request succeeds.
func TestChaosHandlerPanicContained(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Arm("serve.detect", faultinject.Fault{Kind: faultinject.KindPanic, Times: 1})

	s := newServer(2, time.Second, 1<<20)
	dumpTracesOnFailure(t, s)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)

	const req = `{"read":"//C","insert":"/*/B","x":"<C/>"}`
	resp, raw := postJSON(t, ts.URL+"/v1/detect", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked request status = %d, want 500 (body %s)", resp.StatusCode, raw)
	}
	var envelope struct {
		Error  string `json:"error"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(raw, &envelope); err != nil {
		t.Fatalf("500 body is not the JSON envelope: %v (%s)", err, raw)
	}
	if envelope.Reason != "panic" || envelope.Error == "" {
		t.Fatalf("envelope = %+v, want reason \"panic\" and a message", envelope)
	}
	if got := s.metrics.Counter("serve.panics").Load(); got != 1 {
		t.Fatalf("serve.panics = %d, want 1", got)
	}

	// The daemon is still alive and serving.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %v (status %d)", err, hresp.StatusCode)
	}
	hresp.Body.Close()
	resp, raw = postJSON(t, ts.URL+"/v1/detect", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panic status = %d, want 200 (body %s)", resp.StatusCode, raw)
	}
	if got := s.metrics.Gauge("serve.inflight").Load(); got != 0 {
		t.Fatalf("serve.inflight = %d after panic, want 0", got)
	}
	if len(s.pool) != 0 {
		t.Fatalf("pool holds %d leaked slots", len(s.pool))
	}
}

// TestChaosBatchItemPanicIsolated: an injected panic while deciding one
// batch pair yields a 200 whose results carry exactly one per-item error
// (reason "panic"); the other pairs answer normally.
func TestChaosBatchItemPanicIsolated(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Arm("core.batch.worker", faultinject.Fault{Kind: faultinject.KindPanic, Times: 1})

	s := newServer(2, time.Second, 1<<20)
	dumpTracesOnFailure(t, s)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)

	var pairs []string
	for i := 0; i < 3; i++ {
		pairs = append(pairs, fmt.Sprintf(`{"read":"/a[b]/c%d","insert":"/a","x":"<c%d/>"}`, i, i))
	}
	resp, raw := postJSON(t, ts.URL+"/v1/detect/batch", `{"pairs":[`+strings.Join(pairs, ",")+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200 (body %s)", resp.StatusCode, raw)
	}
	var br struct {
		Results []struct {
			Method string `json:"method"`
			Reason string `json:"reason"`
			Error  string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatalf("batch body: %v (%s)", err, raw)
	}
	if len(br.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(br.Results))
	}
	failed := 0
	for i, r := range br.Results {
		if r.Error != "" {
			failed++
			if r.Reason != "panic" {
				t.Fatalf("item %d reason = %q, want \"panic\"", i, r.Reason)
			}
			continue
		}
		if r.Method == "" {
			t.Fatalf("item %d has neither verdict nor error: %s", i, raw)
		}
	}
	if failed != 1 {
		t.Fatalf("failed items = %d, want exactly 1", failed)
	}
	if got := s.metrics.Gauge("serve.inflight").Load(); got != 0 {
		t.Fatalf("serve.inflight = %d after batch, want 0", got)
	}
}

// TestChaosDeadlineDegradesNotErrors: a search that exhausts its
// deadline_ms replies 200 with complete:false and reason "deadline" —
// degradation, not a 500.
func TestChaosDeadlineDegradesNotErrors(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	// Hold the detection long enough that the 5ms deadline lapses before
	// the search's first deadline poll.
	faultinject.Arm("core.detect", faultinject.Fault{Kind: faultinject.KindLatency, Delay: 30 * time.Millisecond})

	s := newServer(2, time.Second, 1<<20)
	dumpTracesOnFailure(t, s)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)

	// A branching read forces the NP-case bounded search.
	resp, raw := postJSON(t, ts.URL+"/v1/detect",
		`{"read":"/a[b]/c","insert":"/x","x":"<y/>","deadline_ms":5,"max_candidates":1000000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline request status = %d, want 200 (body %s)", resp.StatusCode, raw)
	}
	var dr struct {
		Complete bool   `json:"complete"`
		Reason   string `json:"reason"`
	}
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatalf("body: %v (%s)", err, raw)
	}
	if dr.Complete {
		t.Fatalf("verdict complete despite lapsed deadline: %s", raw)
	}
	if dr.Reason != "deadline" {
		t.Fatalf("reason = %q, want \"deadline\" (body %s)", dr.Reason, raw)
	}
}

// TestChaosMidBatchCancelFreesSlots: a client abandoning a batch
// mid-flight must leave no residue — the pool slot comes back, the
// inflight gauge drains to zero, and the cancellation is counted.
func TestChaosMidBatchCancelFreesSlots(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	// Each pair stalls 50ms so the cancel lands mid-batch.
	faultinject.Arm("core.batch.worker", faultinject.Fault{Kind: faultinject.KindLatency, Delay: 50 * time.Millisecond})

	s := newServer(2, time.Second, 1<<20)
	dumpTracesOnFailure(t, s)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)

	var pairs []string
	for i := 0; i < 6; i++ {
		pairs = append(pairs, fmt.Sprintf(`{"read":"/a[b]/c%d","insert":"/a","x":"<c%d/>"}`, i, i))
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/detect/batch",
		strings.NewReader(`{"pairs":[`+strings.Join(pairs, ",")+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	go func() {
		time.Sleep(60 * time.Millisecond)
		cancel()
	}()
	if resp, err := http.DefaultClient.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.Fatal("canceled batch unexpectedly completed")
	}

	// The handler notices asynchronously; poll for the residue to clear.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.metrics.Gauge("serve.inflight").Load() == 0 && len(s.pool) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot residue after cancel: inflight=%d pool=%d",
				s.metrics.Gauge("serve.inflight").Load(), len(s.pool))
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitCounter := time.Now().Add(5 * time.Second)
	for s.metrics.Counter("serve.canceled").Load() == 0 {
		if time.Now().After(waitCounter) {
			t.Fatal("serve.canceled never incremented")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The daemon remains fully serviceable afterwards.
	faultinject.Reset()
	resp, raw := postJSON(t, ts.URL+"/v1/detect", `{"read":"//C","insert":"/*/B","x":"<C/>"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after canceled batch = %d, want 200 (body %s)", resp.StatusCode, raw)
	}
}

// TestChaosDrainEnvelopeAndRetryAfter: the draining 503 uses the same
// JSON envelope as the API errors and tells probes when to come back.
func TestChaosDrainEnvelopeAndRetryAfter(t *testing.T) {
	s := newServer(2, time.Second, 1<<20)
	dumpTracesOnFailure(t, s)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)

	s.ready.Store(false)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 missing Retry-After")
	}
	var envelope struct {
		Error  string `json:"error"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(raw, &envelope); err != nil {
		t.Fatalf("draining body is not the JSON envelope: %v (%s)", err, raw)
	}
	if envelope.Reason != "draining" {
		t.Fatalf("reason = %q, want \"draining\"", envelope.Reason)
	}
}

// TestChaosErrorEnvelopeUniform: every non-2xx API response parses as
// the {"error", "reason"} envelope.
func TestChaosErrorEnvelopeUniform(t *testing.T) {
	s := newServer(2, time.Second, 1<<20)
	dumpTracesOnFailure(t, s)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)

	cases := []struct {
		name, method, path, body, reason string
		status                           int
	}{
		{"bad body", http.MethodPost, "/v1/detect", `{nope`, "bad-request", http.StatusBadRequest},
		{"bad pair", http.MethodPost, "/v1/detect", `{"read":""}`, "bad-request", http.StatusBadRequest},
		{"empty batch", http.MethodPost, "/v1/detect/batch", `{"pairs":[]}`, "bad-request", http.StatusBadRequest},
		{"wrong method", http.MethodGet, "/v1/detect", ``, "method-not-allowed", http.StatusMethodNotAllowed},
		{"no program", http.MethodPost, "/v1/analyze", `{}`, "bad-request", http.StatusBadRequest},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status = %d, want %d (body %s)", tc.name, resp.StatusCode, tc.status, raw)
		}
		var envelope struct {
			Error  string `json:"error"`
			Reason string `json:"reason"`
		}
		if err := json.Unmarshal(raw, &envelope); err != nil {
			t.Fatalf("%s: body is not the JSON envelope: %v (%s)", tc.name, err, raw)
		}
		if envelope.Reason != tc.reason || envelope.Error == "" {
			t.Fatalf("%s: envelope = %+v, want reason %q", tc.name, envelope, tc.reason)
		}
	}
}
