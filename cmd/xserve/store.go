package main

// The durable document store surface: when xserve is started with
// -store-dir, clients can register named XML documents and submit
// READ/INSERT/DELETE operations that are admitted through the conflict
// detector (optimistic commute-or-conflict scheduling, per document)
// and made durable through the store's WAL before they are
// acknowledged.
//
//	POST   /v1/docs                {"doc": "orders", "xml": "<a/>"}
//	GET    /v1/docs/{id}
//	DELETE /v1/docs/{id}
//	POST   /v1/docs/{id}/update    {"op": "insert", "pattern": "/a",
//	                                "x": "<x/>", "semantics": "node",
//	                                "base_lsn": 7}
//	POST   /v1/docs/{id}/snapshot
//
// A rejected operation answers 409 with the uniform envelope plus a
// machine-readable "conflict" object naming the committed update it
// collided with and exactly which conflict semantics fired.

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"xmlconflict/internal/shard"
	"xmlconflict/internal/store"
	"xmlconflict/internal/telemetry/span"
	"xmlconflict/internal/xmltree"
)

// docCreateRequest is the POST /v1/docs body.
type docCreateRequest struct {
	Doc string `json:"doc"`
	XML string `json:"xml"`
}

// docOpRequest is the POST /v1/docs/{id}/update body. BaseLSN opts into
// the optimistic admission check: the operation commits only if it
// commutes with (or, for reads under the chosen semantics, is untouched
// by) every update committed after that LSN.
type docOpRequest struct {
	Op        string `json:"op"`
	Pattern   string `json:"pattern"`
	X         string `json:"x,omitempty"`
	Semantics string `json:"semantics,omitempty"`
	BaseLSN   uint64 `json:"base_lsn,omitempty"`
}

// docResponse is the reply for document operations. Digest is the AHU
// digest of the document after the operation — the same digest crash
// recovery re-verifies, so a client can confirm durability end to end.
type docResponse struct {
	Doc    string   `json:"doc"`
	LSN    uint64   `json:"lsn"`
	Digest string   `json:"digest,omitempty"`
	Points int      `json:"points,omitempty"`
	Nodes  []string `json:"nodes,omitempty"`
	XML    string   `json:"xml,omitempty"`
	Size   int      `json:"size,omitempty"`
	// TraceID names this request's span tree: while the flight recorder
	// holds it, GET /v1/trace/{id} replays the admission, WAL-append,
	// and fsync timeline behind this acknowledgment.
	TraceID string `json:"trace_id,omitempty"`
}

// conflictInfo is the machine-readable rejection attached to a 409
// envelope: which committed update the operation collided with and
// which conflict notions fired.
type conflictInfo struct {
	Doc       string   `json:"doc"`
	Op        string   `json:"op"`
	Semantics string   `json:"semantics"`
	Fired     []string `json:"fired"`
	BaseLSN   uint64   `json:"base_lsn"`
	WithLSN   uint64   `json:"with_lsn"`
	WithKind  string   `json:"with_kind"`
	Detail    string   `json:"detail"`
}

// storeRoutes mounts the document-store API (only called when a store
// is configured). The handlers share the containment wrapper with the
// detection API: a panic on the commit path fail-stops the store but
// answers this request with a 500 envelope and leaves the daemon
// serving.
func (s *server) storeRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/docs", s.traced("docs.create", s.contained(s.handleDocCreate)))
	mux.HandleFunc("GET /v1/docs", s.traced("docs.list", s.contained(s.handleDocList)))
	mux.HandleFunc("GET /v1/docs/{id}", s.traced("docs.get", s.contained(s.handleDocGet)))
	mux.HandleFunc("DELETE /v1/docs/{id}", s.traced("docs.drop", s.contained(s.handleDocDrop)))
	mux.HandleFunc("POST /v1/docs/{id}/update", s.traced("docs.update", s.contained(s.handleDocUpdate)))
	mux.HandleFunc("POST /v1/docs/{id}/snapshot", s.traced("docs.snapshot", s.contained(s.handleDocSnapshot)))
}

// storeErr maps a store error onto the uniform envelope: 404 for
// missing documents, 409 for create collisions and admission rejections
// (with the conflict object attached), 400 for malformed inputs and
// parse-limit violations, 503 for a closed (fail-stopped) store. Every
// envelope carries the request's trace ID: the flight recorder always
// keeps conflicting and errored traces, so the client can fetch the
// full span tree — fired semantics, BaseLSN window, WAL timings — from
// /v1/trace/{id} after the fact.
func (s *server) storeErr(w http.ResponseWriter, r *http.Request, err error) {
	s.metrics.Add("serve.errors", 1)
	resp := errorResponse{Error: err.Error(), TraceID: traceID(r)}
	status := http.StatusBadRequest
	resp.Reason = "bad-request"
	var ce *store.ConflictError
	var le *xmltree.LimitError
	switch {
	case errors.As(err, &ce):
		status, resp.Reason = http.StatusConflict, "conflict"
		resp.Conflict = &conflictInfo{
			Doc: ce.Doc, Op: ce.Op, Semantics: ce.Sem.String(), Fired: ce.Fired,
			BaseLSN: ce.BaseLSN, WithLSN: ce.WithLSN, WithKind: ce.WithKind, Detail: ce.Detail,
		}
	case errors.Is(err, store.ErrNotFound):
		status, resp.Reason = http.StatusNotFound, "not-found"
	case errors.Is(err, store.ErrExists):
		status, resp.Reason = http.StatusConflict, "exists"
	case errors.Is(err, store.ErrStaleBase):
		status, resp.Reason = http.StatusConflict, "stale-base"
	case errors.Is(err, store.ErrFutureBase):
		status, resp.Reason = http.StatusConflict, "future-base"
	case errors.Is(err, store.ErrClosed):
		status, resp.Reason = http.StatusServiceUnavailable, "store-closed"
	case errors.Is(err, store.ErrUnsafeLabel):
		resp.Reason = "unsafe-label"
	case errors.As(err, &le):
		resp.Reason = "limit"
	}
	writeJSON(w, status, resp)
}

// tenantSlot stamps the request's tenant on its span and claims the
// tenant's inflight allowance. A tenant past its allowance gets the
// 429 quota envelope (Retry-After from the docs route's latency) and
// ok=false; the caller must defer the release when ok.
func (s *server) tenantSlot(w http.ResponseWriter, r *http.Request, doc string) (release func(), ok bool) {
	tenant := shard.TenantOf(r.Header.Get("X-Tenant"), doc)
	span.FromContext(r.Context()).Set("tenant", tenant)
	release, err := s.tenants.Acquire(tenant)
	if err != nil {
		s.metrics.Add("serve.tenant_rejected", 1)
		w.Header().Set("Retry-After", s.retryAfter("docs"))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error:   fmt.Sprintf("tenant %q has its full inflight allowance of %d in use", tenant, s.tenants.Limit()),
			Reason:  "tenant-quota",
			TraceID: traceID(r),
		})
		return nil, false
	}
	return release, true
}

func (s *server) handleDocCreate(w http.ResponseWriter, r *http.Request) {
	s.metrics.Add("serve.requests", 1)
	var req docCreateRequest
	if !s.decode(w, r, &req) {
		return
	}
	release, ok := s.tenantSlot(w, r, req.Doc)
	if !ok {
		return
	}
	defer release()
	res, err := s.createDoc(r.Context(), req.Doc, req.XML)
	if err != nil {
		if s.replRedirect(w, r, err, req.Doc, nil, req) || s.replStoreErr(w, r, err) {
			return
		}
		s.storeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, docResponse{Doc: res.Doc, LSN: res.LSN, Digest: res.Digest, TraceID: traceID(r)})
}

func (s *server) handleDocGet(w http.ResponseWriter, r *http.Request) {
	s.metrics.Add("serve.requests", 1)
	if s.replReadGate(w, r) {
		return
	}
	if s.replMinLSNGate(w, r, r.PathValue("id")) {
		return
	}
	info, err := s.store.Get(r.PathValue("id"))
	if err != nil {
		s.storeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, docResponse{
		Doc: info.Doc, LSN: info.LSN, Digest: info.Digest, XML: info.XML, Size: info.Size,
		TraceID: traceID(r),
	})
}

func (s *server) handleDocDrop(w http.ResponseWriter, r *http.Request) {
	s.metrics.Add("serve.requests", 1)
	release, ok := s.tenantSlot(w, r, r.PathValue("id"))
	if !ok {
		return
	}
	defer release()
	res, err := s.dropDoc(r.Context(), r.PathValue("id"))
	if err != nil {
		if s.replRedirect(w, r, err, r.PathValue("id"), nil, nil) || s.replStoreErr(w, r, err) {
			return
		}
		s.storeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, docResponse{Doc: res.Doc, LSN: res.LSN, TraceID: traceID(r)})
}

func (s *server) handleDocUpdate(w http.ResponseWriter, r *http.Request) {
	s.metrics.Add("serve.requests", 1)
	var req docOpRequest
	if !s.decode(w, r, &req) {
		return
	}
	sem, err := parseSemantics(req.Semantics)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad-request", err.Error())
		return
	}
	tenantRelease, ok := s.tenantSlot(w, r, r.PathValue("id"))
	if !ok {
		return
	}
	defer tenantRelease()
	// Admission runs the commute/fired-semantics checks — detection
	// work — so it rides the same bounded worker pool as /v1/detect.
	release, err := s.acquireSlot(r.Context())
	if err != nil {
		s.rejectSlot(w, err, "docs")
		return
	}
	defer release()
	begin := time.Now()
	op := store.Op{
		Kind:    req.Op,
		Pattern: req.Pattern,
		X:       req.X,
		Sem:     sem,
		BaseLSN: req.BaseLSN,
	}
	res, err := s.submitDoc(r.Context(), r.PathValue("id"), op)
	// The docs route keeps its own latency distribution: its Retry-After
	// hint must track fsync-bound store latency, not detect latency.
	s.metrics.Timer("serve.docs").ObserveTraced(time.Since(begin), traceID(r))
	if err != nil {
		if s.replRedirect(w, r, err, r.PathValue("id"), &op, req) || s.replStoreErr(w, r, err) {
			return
		}
		s.storeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, docResponse{
		Doc: res.Doc, LSN: res.LSN, Digest: res.Digest, Points: res.Points, Nodes: res.Nodes,
		TraceID: traceID(r),
	})
}

func (s *server) handleDocSnapshot(w http.ResponseWriter, r *http.Request) {
	s.metrics.Add("serve.requests", 1)
	// The path names a document for symmetry with the other routes, but
	// snapshots are whole-space: verify the document exists, then
	// snapshot every shard. The reply LSN is the owning shard's — the
	// one that covers the named document.
	id := r.PathValue("id")
	if _, err := s.store.Get(id); err != nil {
		s.storeErr(w, r, err)
		return
	}
	lsns, err := s.store.SnapshotAll()
	if err != nil {
		s.storeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, docResponse{Doc: id, LSN: lsns[s.store.ShardFor(id)]})
}

// docListResponse is the GET /v1/docs reply: every stored document
// across all shards, gathered deterministically (sorted by id), each
// naming the shard that owns it.
type docListResponse struct {
	Docs   []shard.DocEntry `json:"docs"`
	Shards int              `json:"shards"`
}

func (s *server) handleDocList(w http.ResponseWriter, r *http.Request) {
	s.metrics.Add("serve.requests", 1)
	if s.replReadGate(w, r) {
		return
	}
	entries, err := s.store.List()
	if err != nil {
		s.storeErr(w, r, err)
		return
	}
	if entries == nil {
		entries = []shard.DocEntry{}
	}
	writeJSON(w, http.StatusOK, docListResponse{Docs: entries, Shards: s.store.Shards()})
}

// parseFsyncPolicy maps the -store-fsync flag value.
func parseFsyncPolicy(name string) (store.FsyncPolicy, error) {
	switch name {
	case "", "always":
		return store.FsyncAlways, nil
	case "group":
		return store.FsyncGroup, nil
	case "never":
		return store.FsyncNever, nil
	}
	return 0, fmt.Errorf("unknown fsync policy %q (want always, group, or never)", name)
}
