package main

// End-to-end replication tests at the HTTP surface: two full xserve
// servers (detector pool, tracing, tenant limits, store) joined into a
// primary/backup pair. Clients speak only /v1/docs — the proxying,
// staleness stamping, and tentative fallback must be invisible until
// they matter.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"xmlconflict/internal/faultinject"
	"xmlconflict/internal/replica"
	"xmlconflict/internal/shard"
	"xmlconflict/internal/store"
)

// replSwap lets the httptest listener exist before the server behind it
// does (the replica node needs every peer URL at Open time). A nil
// handler answers 503 — an unreachable-but-listening node.
type replSwap struct {
	mu sync.Mutex
	h  http.Handler
}

func (sw *replSwap) set(h http.Handler) {
	sw.mu.Lock()
	sw.h = h
	sw.mu.Unlock()
}

func (sw *replSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw.mu.Lock()
	h := sw.h
	sw.mu.Unlock()
	if h == nil {
		http.Error(w, "down", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

type replServer struct {
	s    *server
	ts   *httptest.Server
	node *replica.Node
	swap *replSwap
}

// newReplPair boots a 2-node xserve cluster ("a" primary, "b" backup)
// whose replication traffic flows through the same mux clients use.
func newReplPair(t *testing.T, tentative bool) map[string]*replServer {
	t.Helper()
	ids := []string{"a", "b"}
	swaps := map[string]*replSwap{}
	tss := map[string]*httptest.Server{}
	var peers []replica.Peer
	for _, id := range ids {
		sw := &replSwap{}
		ts := httptest.NewServer(sw)
		t.Cleanup(ts.Close)
		swaps[id], tss[id] = sw, ts
		peers = append(peers, replica.Peer{ID: id, URL: ts.URL})
	}
	out := map[string]*replServer{}
	for _, id := range ids {
		s := newServer(2, time.Second, 1<<20)
		node, err := replica.Open(t.TempDir(),
			shard.Options{Shards: 1, Store: store.Options{Metrics: s.metrics}},
			replica.Options{
				NodeID:         id,
				Peers:          peers,
				Ack:            replica.AckQuorum,
				HeartbeatEvery: 20 * time.Millisecond,
				// Keep roles pinned: these tests exercise the serving
				// path, not failover (internal/replica covers that).
				FailoverAfter:  time.Hour,
				StalenessBound: time.Second,
				Tentative:      tentative,
				Metrics:        s.metrics,
			})
		if err != nil {
			t.Fatalf("replica.Open(%s): %v", id, err)
		}
		t.Cleanup(func() { node.Close() })
		s.node = node
		s.store = node.Router()
		swaps[id].set(s.routes())
		out[id] = &replServer{s: s, ts: tss[id], node: node, swap: swaps[id]}
	}
	return out
}

func TestReplWriteOnBackupProxiesToPrimary(t *testing.T) {
	c := newReplPair(t, false)
	b := c["b"]
	client := b.ts.Client()

	// Create lands on the backup; the client still gets a 201, served
	// by the primary behind one proxy hop.
	resp, out := doJSON(t, client, "POST", b.ts.URL+"/v1/docs", map[string]any{"doc": "d", "xml": "<r/>"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("proxied create: %d %v", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Repl-Proxied-To"); got != "a" {
		t.Fatalf("X-Repl-Proxied-To = %q, want a", got)
	}

	// Same for an update.
	resp, out = doJSON(t, client, "POST", b.ts.URL+"/v1/docs/d/update",
		map[string]any{"op": "insert", "pattern": "/r", "x": "<x/>"})
	if resp.StatusCode != http.StatusOK || out["lsn"].(float64) < 2 {
		t.Fatalf("proxied update: %d %v", resp.StatusCode, out)
	}

	// The backup serves the replicated read locally, stamping how far
	// behind the primary it might be.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, out = doJSON(t, client, "GET", b.ts.URL+"/v1/docs/d", nil)
		if resp.StatusCode == http.StatusOK && strings.Contains(out["xml"].(string), "<x") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backup never served the replicated doc: %d %v", resp.StatusCode, out)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if resp.Header.Get("X-Replica-Staleness-Ms") == "" {
		t.Fatal("backup read missing X-Replica-Staleness-Ms")
	}
}

func TestReplForwardLoopGuard(t *testing.T) {
	c := newReplPair(t, false)
	b := c["b"]

	// A request already carrying the forwarded marker must not hop
	// again — the topology is settling, so the client gets an honest
	// 503 and retries.
	body := strings.NewReader(`{"doc":"d","xml":"<r/>"}`)
	req, err := http.NewRequest("POST", b.ts.URL+"/v1/docs", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(replForwardHeader, "a")
	resp, err := b.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	if resp.StatusCode != http.StatusServiceUnavailable || out["reason"] != "no-primary" {
		t.Fatalf("loop guard: %d %v", resp.StatusCode, out)
	}
}

func TestReplStaleBackupRefusesReads(t *testing.T) {
	c := newReplPair(t, false)
	a, b := c["a"], c["b"]
	client := b.ts.Client()

	if resp, out := doJSON(t, a.ts.Client(), "POST", a.ts.URL+"/v1/docs", map[string]any{"doc": "d", "xml": "<r/>"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, out)
	}

	// Silence the primary — the partition site severs its outbound
	// heartbeats too, not just its listener. Once the backup's last
	// contact ages past the staleness bound it must refuse reads rather
	// than serve state of unknown age.
	a.swap.set(nil)
	faultinject.Arm("repl.partition.a", faultinject.Fault{Kind: faultinject.KindError})
	defer faultinject.Disarm("repl.partition.a")
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, out := doJSON(t, client, "GET", b.ts.URL+"/v1/docs/d", nil)
		if resp.StatusCode == http.StatusServiceUnavailable && out["reason"] == "stale-replica" {
			if resp.Header.Get("X-Replica-Staleness-Ms") == "" {
				t.Fatal("stale refusal missing staleness header")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("backup kept serving past the staleness bound: %d %v", resp.StatusCode, out)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestReplTentativeAcceptsWhenPrimaryUnreachable(t *testing.T) {
	c := newReplPair(t, true)
	a, b := c["a"], c["b"]
	client := b.ts.Client()

	if resp, out := doJSON(t, a.ts.Client(), "POST", a.ts.URL+"/v1/docs", map[string]any{"doc": "d", "xml": "<r/>"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, out)
	}
	waitReplicated(t, b, "d")

	// Kill the primary's listener outright: the proxy attempt gets a
	// transport error, so the backup queues the update optimistically
	// and answers 202 with its queue coordinates.
	a.ts.CloseClientConnections()
	a.ts.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, out := doJSON(t, client, "POST", b.ts.URL+"/v1/docs/d/update",
			map[string]any{"op": "insert", "pattern": "/r", "x": "<t/>"})
		if resp.StatusCode == http.StatusAccepted {
			if out["tentative"] != true || out["node"] != "b" || out["seq"].(float64) < 1 {
				t.Fatalf("202 body: %v", out)
			}
			if b.node.TentativeBacklog() == 0 {
				t.Fatal("202 answered but backlog is empty")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("tentative fallback never engaged: %d %v", resp.StatusCode, out)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestReplCreateOnUnreachablePrimaryIs503(t *testing.T) {
	// Creates and drops have no optimistic path — with the primary gone
	// they fail honestly even in tentative mode.
	c := newReplPair(t, true)
	a, b := c["a"], c["b"]
	a.ts.CloseClientConnections()
	a.ts.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, out := doJSON(t, b.ts.Client(), "POST", b.ts.URL+"/v1/docs", map[string]any{"doc": "d", "xml": "<r/>"})
		if resp.StatusCode == http.StatusServiceUnavailable && out["reason"] == "not-primary" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("create against dead primary: %d %v", resp.StatusCode, out)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitReplicated blocks until the named doc is readable on the backup.
func waitReplicated(t *testing.T, b *replServer, doc string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := b.node.Router().Get(doc); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("doc %s never replicated to backup", doc)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// getWithMinLSN is a GET /v1/docs/{id} stamped with X-Min-LSN.
func getWithMinLSN(t *testing.T, client *http.Client, url, min string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Min-LSN", min)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out) //nolint:errcheck // some refusals have no body
	return resp, out
}

// TestReplMinLSNReadYourWrites: a client that stamps the LSN its write
// was acknowledged at never reads state from before that write — the
// backup either waits until it catches up or refuses honestly.
func TestReplMinLSNReadYourWrites(t *testing.T) {
	c := newReplPair(t, false)
	a, b := c["a"], c["b"]

	resp, out := doJSON(t, a.ts.Client(), "POST", a.ts.URL+"/v1/docs", map[string]any{"doc": "d", "xml": "<r/>"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, out)
	}
	resp, out = doJSON(t, a.ts.Client(), "POST", a.ts.URL+"/v1/docs/d/update",
		map[string]any{"op": "insert", "pattern": "/r", "x": "<mine/>"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %d %v", resp.StatusCode, out)
	}
	lsn := strconv.Itoa(int(out["lsn"].(float64)))

	// Read-your-writes on the backup: the gate may briefly wait for the
	// frame to arrive, but it must answer 200 with the write visible —
	// never a 200 showing pre-write state.
	resp, out = getWithMinLSN(t, b.ts.Client(), b.ts.URL+"/v1/docs/d", lsn)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gated read: %d %v", resp.StatusCode, out)
	}
	if !strings.Contains(out["xml"].(string), "<mine") {
		t.Fatalf("gated 200 served pre-write state: %v", out["xml"])
	}

	// An unreachable position times out into an honest refusal with a
	// retry hint, not a silent stale answer.
	resp, out = getWithMinLSN(t, b.ts.Client(), b.ts.URL+"/v1/docs/d", "999999")
	if resp.StatusCode != http.StatusServiceUnavailable || out["reason"] != "stale-replica" {
		t.Fatalf("unreachable min-lsn: %d %v", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("min-lsn refusal missing Retry-After")
	}

	// A garbage header is the client's bug: 400, not a wait.
	resp, out = getWithMinLSN(t, b.ts.Client(), b.ts.URL+"/v1/docs/d", "not-a-number")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad X-Min-LSN: %d %v", resp.StatusCode, out)
	}

	// Replication off (plain single store): the header is ignored.
	solo := httptest.NewServer(newStoreServer(t, t.TempDir()).routes())
	t.Cleanup(solo.Close)
	resp2, out2 := doJSON(t, http.DefaultClient, "POST", solo.URL+"/v1/docs", map[string]any{"doc": "s", "xml": "<r/>"})
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("solo create: %d %v", resp2.StatusCode, out2)
	}
	resp2, _ = getWithMinLSN(t, http.DefaultClient, solo.URL+"/v1/docs/s", "999999")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("unreplicated server honored X-Min-LSN: %d", resp2.StatusCode)
	}
}
