package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"xmlconflict/internal/loadgen"
)

// TestLoadgenConflictHeavyInProcess drives the conflict-heavy xload
// scenario against an in-process xserve with the document store
// mounted: the end-to-end contract the CI smoke job asserts out of
// process. The run must produce a consistent report, observe real
// 409s from stale-base updates, and carry at least one tail sample
// whose trace ID resolved against GET /v1/trace/{id}.
func TestLoadgenConflictHeavyInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("load run takes ~2s")
	}
	s := newStoreServer(t, t.TempDir())
	s.identity["store"] = "on"
	s.identity["store_fsync"] = "never"
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)

	sc, err := loadgen.Lookup("conflict-heavy")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.Run(context.Background(), sc, loadgen.Options{
		Target:   ts.URL,
		Duration: 2 * time.Second,
		Rate:     80,
		Seed:     7,
		Label:    "in-process",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if err := loadgen.Check(rep); err != nil {
		t.Fatalf("Check: %v\nreport: %s", err, loadgen.FormatReport(rep))
	}
	if rep.Counts.Conflicts == 0 {
		t.Fatalf("conflict-heavy run saw no 409s:\n%s", loadgen.FormatReport(rep))
	}
	if rep.Identity["store"] != "on" {
		t.Fatalf("report identity missing store=on: %v", rep.Identity)
	}
	resolved := false
	for _, smp := range rep.Tail {
		if smp.Resolved {
			resolved = true
			if smp.TraceName == "" {
				t.Fatalf("resolved tail sample has empty trace name: %+v", smp)
			}
		}
	}
	if !resolved {
		t.Fatalf("no tail sample resolved via /v1/trace/{id}:\n%s", loadgen.FormatReport(rep))
	}

	// Same report against itself: the comparison must be clean — the
	// determinism -compare relies on.
	findings, _ := loadgen.Compare(rep, rep)
	if len(findings) != 0 {
		t.Fatalf("self-compare found drift: %+v", findings)
	}
}

// TestLoadgenPreflightRejectsStorelessTarget checks the preflight
// contract: a NeedsStore scenario must refuse a target whose identity
// says the store is off, before offering any load.
func TestLoadgenPreflightRejectsStorelessTarget(t *testing.T) {
	_, ts := testServer(t, 2) // no store mounted; identity says store=off

	sc, err := loadgen.Lookup("conflict-heavy")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.Run(context.Background(), sc, loadgen.Options{
		Target:   ts.URL,
		Duration: time.Second,
		Rate:     10,
	})
	if err == nil {
		t.Fatalf("Run succeeded against a store-less target: %s", loadgen.FormatReport(rep))
	}
	if rep.Counts.Sent != 0 {
		t.Fatalf("preflight failure still sent %d requests", rep.Counts.Sent)
	}
}
