package main

// Request tracing: every API request runs under a span tree rooted at
// the handler, propagated through the worker-pool queue, the detector
// cache, the search, and the store's WAL pipeline via the request
// context. Completed traces land in the flight recorder; slow, errored,
// degraded, and conflicting ones are always kept (per-category rings),
// so the forensics for a 409 or a tail-latency spike survive fast
// traffic. GET /v1/trace/{id} replays a held trace; /debug/requests
// lists what the recorder holds.

import (
	"net/http"

	"xmlconflict/internal/telemetry/span"
)

// statusWriter captures the status a handler wrote so the tracing
// middleware can classify the request after the fact.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// traced wraps a handler in one trace per request. It sits OUTSIDE the
// containment wrapper so a contained panic still finishes and records
// its trace (with the error flag the 500 earns it). An incoming W3C
// traceparent header continues the caller's trace ID; the reply always
// carries X-Trace-Id and a traceparent for downstream hops.
func (s *server) traced(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var tr *span.Trace
		if tid, _, ok := span.ParseTraceparent(r.Header.Get("traceparent")); ok {
			tr = span.Resume(name, tid)
		} else {
			tr = span.New(name)
		}
		root := tr.Root()
		root.Set("method", r.Method)
		root.Set("path", r.URL.Path)
		w.Header().Set("X-Trace-Id", tr.ID())
		w.Header().Set("traceparent", tr.Traceparent())
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			root.Set("status", status)
			switch {
			case status >= 500:
				tr.Flag("error")
			case status == http.StatusConflict:
				tr.Flag("conflict")
			}
			s.recorder.Record(tr)
		}()
		h(sw, r.WithContext(span.Context(r.Context(), root)))
	}
}

// traceID is the request's trace ID, or "" outside the traced wrapper.
func traceID(r *http.Request) string {
	return span.FromContext(r.Context()).TraceID()
}

// flagDegraded marks the request's trace when a search came back
// incomplete (budget or deadline degradation) so the flight recorder
// always keeps it.
func flagDegraded(r *http.Request, complete bool) {
	if !complete {
		span.FromContext(r.Context()).Flag("degraded")
	}
}

// handleTraceGet serves GET /v1/trace/{id}: the full span tree of a
// trace the flight recorder still holds. Deliberately untraced — trace
// inspection must not churn the rings it reads.
func (s *server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	v, ok := s.recorder.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "not-found", "trace not held: "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, v)
}
