package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func testServer(t *testing.T, pool int) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(pool, 50*time.Millisecond, 1<<20)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func postDetect(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/detect", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

func TestDetectConflictAndNoConflict(t *testing.T) {
	_, ts := testServer(t, 2)

	resp, data := postDetect(t, ts.URL, `{"read":"//C","insert":"/*/B","x":"<C/>"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var v detectResponse
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("bad JSON %q: %v", data, err)
	}
	if !v.Conflict || v.Witness == "" || v.Method == "" || !v.Complete {
		t.Fatalf("conflicting insert: %+v", v)
	}
	if v.Semantics != "node" {
		t.Fatalf("default semantics = %q", v.Semantics)
	}

	resp, data = postDetect(t, ts.URL, `{"read":"//A","delete":"//B","semantics":"node","max_nodes":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var v2 detectResponse
	json.Unmarshal(data, &v2)
	// //A vs delete //B: deleting a B can drop A descendants — conflict
	// exists; just assert the response is well-formed and decisive.
	if v2.Method == "" {
		t.Fatalf("delete verdict: %+v", v2)
	}
}

func TestDetectWithTreeIsWitnessCheck(t *testing.T) {
	_, ts := testServer(t, 1)
	resp, data := postDetect(t, ts.URL,
		`{"read":"//C","insert":"/*/B","x":"<C/>","tree":"<r><B/></r>"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var v detectResponse
	json.Unmarshal(data, &v)
	if v.Method != "witness-check" || !v.Conflict {
		t.Fatalf("witness check: %+v", v)
	}
	// A tree on which the insert cannot fire does not witness.
	resp, data = postDetect(t, ts.URL,
		`{"read":"//C","insert":"/*/B","x":"<C/>","tree":"<r><Z/></r>"}`)
	json.Unmarshal(data, &v)
	if resp.StatusCode != http.StatusOK || v.Conflict {
		t.Fatalf("non-witness tree: %d %+v", resp.StatusCode, v)
	}
}

func TestDetectUnderSchema(t *testing.T) {
	_, ts := testServer(t, 1)
	// The update pattern cannot fire on any valid tree: static prune.
	resp, data := postDetect(t, ts.URL,
		`{"read":"//a","insert":"//nope","schema":"root r\nr: a?\na:"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var v detectResponse
	json.Unmarshal(data, &v)
	if v.Conflict || !strings.HasPrefix(v.Method, "schema") {
		t.Fatalf("schema verdict: %+v", v)
	}
}

func TestDetectBadRequests(t *testing.T) {
	_, ts := testServer(t, 1)
	for _, body := range []string{
		`{`,              // malformed JSON
		`{}`,             // no read
		`{"read":"//A"}`, // no update
		`{"read":"//A","insert":"//B","delete":"//C"}`, // both updates
		`{"read":"///","insert":"//B"}`,                // bad xpath
		`{"read":"//A","insert":"//B","semantics":"bogus"}`,
		`{"read":"//A","insert":"//B","unknown_field":1}`,
	} {
		resp, data := postDetect(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status = %d (%s), want 400", body, resp.StatusCode, data)
		}
		var e errorResponse
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Fatalf("body %q: error response %q", body, data)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/detect")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}
}

// TestMetricsUnderConcurrentLoad is the acceptance scenario: concurrent
// POST /v1/detect load, then /metrics must expose detect-latency
// quantiles and the serve counters in Prometheus text format.
func TestMetricsUnderConcurrentLoad(t *testing.T) {
	// A long queue timeout: this test wants every request served (the
	// slow search bodies can hold the pool for a while under -race);
	// load shedding has its own test below.
	s := newServer(4, 10*time.Second, 1<<20)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	var wg sync.WaitGroup
	const n = 24
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := `{"read":"//C","insert":"/*/B","x":"<C/>"}`
			if i%2 == 1 {
				body = `{"read":"a[b][c]/d","delete":"z/w","max_nodes":4,"max_candidates":2000}`
			}
			resp, err := http.Post(ts.URL+"/v1/detect", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status = %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	io.Copy(&buf, resp.Body)
	out := buf.String()
	for _, want := range []string{
		"# TYPE xmlconflict_serve_detect_seconds summary",
		`xmlconflict_serve_detect_seconds{quantile="0.5"}`,
		`xmlconflict_serve_detect_seconds{quantile="0.9"}`,
		`xmlconflict_serve_detect_seconds{quantile="0.99"}`,
		"xmlconflict_serve_detect_seconds_count 24",
		"xmlconflict_serve_requests 24",
		"xmlconflict_detect_calls", // engine counters flow into the same registry
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in /metrics:\n%s", want, out)
		}
	}
}

func TestPoolSaturationRejectsWith503(t *testing.T) {
	s, ts := testServer(t, 1)
	// Occupy the single slot directly so the next request must queue and
	// time out (queue timeout is 50ms in testServer).
	s.pool <- struct{}{}
	defer func() { <-s.pool }()
	resp, data := postDetect(t, ts.URL, `{"read":"//C","insert":"/*/B"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if s.metrics.Counter("serve.rejected").Load() == 0 {
		t.Fatal("rejection not counted")
	}
}

func TestReadyzFlipsDuringDrain(t *testing.T) {
	s, ts := testServer(t, 1)
	resp, _ := http.Get(ts.URL + "/readyz")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready status = %d", resp.StatusCode)
	}
	s.ready.Store(false)
	resp, _ = http.Get(ts.URL + "/readyz")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", resp.StatusCode)
	}
}
