package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xmlconflict/internal/faultinject"
	"xmlconflict/internal/shard"
	"xmlconflict/internal/store"
)

// newStoreServer builds a server with the document store mounted on a
// fresh directory (unsharded; see newShardedServer for S > 1).
func newStoreServer(t *testing.T, dir string) *server {
	return newShardedServer(t, dir, 1)
}

// newShardedServer builds a server whose document space spans n store
// shards rooted at dir.
func newShardedServer(t *testing.T, dir string, n int) *server {
	t.Helper()
	s := newServer(2, time.Second, 1<<20)
	rt, err := shard.Open(dir, shard.Options{Shards: n, Store: store.Options{Metrics: s.metrics}})
	if err != nil {
		t.Fatalf("shard.Open: %v", err)
	}
	t.Cleanup(func() { rt.Close() })
	s.store = rt
	return s
}

func doJSON(t *testing.T, client *http.Client, method, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decode reply: %v", method, url, err)
	}
	return resp, out
}

func TestDocsEndpointLifecycle(t *testing.T) {
	s := newStoreServer(t, t.TempDir())
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	c := ts.Client()

	// Create.
	resp, out := doJSON(t, c, "POST", ts.URL+"/v1/docs", map[string]any{"doc": "d", "xml": "<a><b/></a>"})
	if resp.StatusCode != http.StatusCreated || out["lsn"].(float64) != 1 || out["digest"] == "" {
		t.Fatalf("create: %d %v", resp.StatusCode, out)
	}
	// Duplicate create is a 409.
	resp, out = doJSON(t, c, "POST", ts.URL+"/v1/docs", map[string]any{"doc": "d", "xml": "<a/>"})
	if resp.StatusCode != http.StatusConflict || out["reason"] != "exists" {
		t.Fatalf("duplicate create: %d %v", resp.StatusCode, out)
	}

	// Update.
	resp, out = doJSON(t, c, "POST", ts.URL+"/v1/docs/d/update",
		map[string]any{"op": "insert", "pattern": "/a/b", "x": "<c/>"})
	if resp.StatusCode != http.StatusOK || out["points"].(float64) != 1 || out["lsn"].(float64) != 2 {
		t.Fatalf("update: %d %v", resp.StatusCode, out)
	}

	// Read returns matched subtrees.
	resp, out = doJSON(t, c, "POST", ts.URL+"/v1/docs/d/update",
		map[string]any{"op": "read", "pattern": "//b"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read: %d %v", resp.StatusCode, out)
	}
	nodes := out["nodes"].([]any)
	if len(nodes) != 1 || nodes[0] != "<b><c/></b>" {
		t.Fatalf("read nodes: %v", nodes)
	}

	// Get.
	resp, out = doJSON(t, c, "GET", ts.URL+"/v1/docs/d", nil)
	if resp.StatusCode != http.StatusOK || out["xml"] != "<a><b><c/></b></a>" || out["size"].(float64) != 3 {
		t.Fatalf("get: %d %v", resp.StatusCode, out)
	}

	// Snapshot.
	resp, out = doJSON(t, c, "POST", ts.URL+"/v1/docs/d/snapshot", nil)
	if resp.StatusCode != http.StatusOK || out["lsn"].(float64) != 2 {
		t.Fatalf("snapshot: %d %v", resp.StatusCode, out)
	}

	// Delete, then 404s.
	resp, _ = doJSON(t, c, "DELETE", ts.URL+"/v1/docs/d", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drop: %d", resp.StatusCode)
	}
	resp, out = doJSON(t, c, "GET", ts.URL+"/v1/docs/d", nil)
	if resp.StatusCode != http.StatusNotFound || out["reason"] != "not-found" {
		t.Fatalf("get after drop: %d %v", resp.StatusCode, out)
	}
	resp, out = doJSON(t, c, "POST", ts.URL+"/v1/docs/d/snapshot", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("snapshot of missing doc: %d %v", resp.StatusCode, out)
	}
}

func TestDocsConflictEnvelope(t *testing.T) {
	s := newStoreServer(t, t.TempDir())
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	c := ts.Client()

	doJSON(t, c, "POST", ts.URL+"/v1/docs", map[string]any{"doc": "d", "xml": "<a/>"})
	doJSON(t, c, "POST", ts.URL+"/v1/docs/d/update", map[string]any{"op": "insert", "pattern": "/a", "x": "<x/>"})

	// A delete submitted against the pre-insert base does not commute
	// with the insert: 409 with the machine-readable conflict object.
	resp, out := doJSON(t, c, "POST", ts.URL+"/v1/docs/d/update",
		map[string]any{"op": "delete", "pattern": "//x", "base_lsn": 1})
	if resp.StatusCode != http.StatusConflict || out["reason"] != "conflict" {
		t.Fatalf("conflicting delete: %d %v", resp.StatusCode, out)
	}
	conflict, ok := out["conflict"].(map[string]any)
	if !ok {
		t.Fatalf("conflict object missing: %v", out)
	}
	if conflict["with_kind"] != "insert" || conflict["with_lsn"].(float64) != 2 ||
		conflict["base_lsn"].(float64) != 1 || conflict["semantics"] != "value" {
		t.Fatalf("conflict fields: %v", conflict)
	}
	fired := conflict["fired"].([]any)
	if len(fired) != 1 || fired[0] != "value" {
		t.Fatalf("fired: %v", fired)
	}

	// A read under tree semantics against the same base also rejects;
	// its fired list distinguishes the notions.
	resp, out = doJSON(t, c, "POST", ts.URL+"/v1/docs/d/update",
		map[string]any{"op": "read", "pattern": "/a", "semantics": "tree", "base_lsn": 1})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting read: %d %v", resp.StatusCode, out)
	}
	// The same read under node semantics is admitted: the insert did
	// not move the read's node set.
	resp, _ = doJSON(t, c, "POST", ts.URL+"/v1/docs/d/update",
		map[string]any{"op": "read", "pattern": "/a", "semantics": "node", "base_lsn": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("node-semantics read: %d", resp.StatusCode)
	}

	// Stale and future bases get their own 409 reasons.
	resp, out = doJSON(t, c, "POST", ts.URL+"/v1/docs/d/update",
		map[string]any{"op": "read", "pattern": "/a", "base_lsn": 99})
	if resp.StatusCode != http.StatusConflict || out["reason"] != "future-base" {
		t.Fatalf("future base: %d %v", resp.StatusCode, out)
	}
	if s.metrics.Counter("store.conflict_rejections").Load() == 0 {
		t.Fatal("store.conflict_rejections not visible on the shared registry")
	}
}

func TestDocsBadRequests(t *testing.T) {
	s := newStoreServer(t, t.TempDir())
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	c := ts.Client()

	cases := []struct {
		method, path string
		body         any
		reason       string
	}{
		{"POST", "/v1/docs", map[string]any{"doc": "bad id!", "xml": "<a/>"}, "bad-request"},
		{"POST", "/v1/docs", map[string]any{"doc": "d", "xml": "<a><unclosed>"}, "bad-request"},
		{"POST", "/v1/docs", map[string]any{"doc": "d", "xml": "<a/>", "nope": 1}, "bad-request"},
		{"POST", "/v1/docs/d/update", map[string]any{"op": "chmod", "pattern": "/a"}, "bad-request"},
		{"POST", "/v1/docs/missing/update", map[string]any{"op": "read", "pattern": "/a"}, "not-found"},
		{"DELETE", "/v1/docs/missing", nil, "not-found"},
	}
	for _, tc := range cases {
		resp, out := doJSON(t, c, tc.method, ts.URL+tc.path, tc.body)
		if resp.StatusCode/100 != 4 || out["reason"] != tc.reason {
			t.Errorf("%s %s: %d %v (want 4xx %s)", tc.method, tc.path, resp.StatusCode, out, tc.reason)
		}
	}

	// Parse limits surface as 400 "limit": a document over the default
	// depth bound is rejected at the door.
	var b strings.Builder
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&b, "<a>")
	}
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&b, "</a>")
	}
	resp, out := doJSON(t, c, "POST", ts.URL+"/v1/docs", map[string]any{"doc": "deep", "xml": b.String()})
	if resp.StatusCode != http.StatusBadRequest || out["reason"] != "limit" {
		t.Fatalf("deep doc: %d %v", resp.StatusCode, out)
	}
}

func TestDocsMetricsExposed(t *testing.T) {
	s := newStoreServer(t, t.TempDir())
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	c := ts.Client()
	doJSON(t, c, "POST", ts.URL+"/v1/docs", map[string]any{"doc": "d", "xml": "<a/>"})

	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	for _, metric := range []string{"store_appends", "store_fsync", "store_docs"} {
		if !strings.Contains(body.String(), metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}
}

// TestChaosStoreKillMidCommit is the serving-path half of the
// kill-mid-commit drill: a crash injected on the WAL append path fails
// that one request with the 500 envelope, fail-stops the store (503
// store-closed afterwards) while detection keeps serving, and a
// restart recovers the document to the last acknowledged digest.
func TestChaosStoreKillMidCommit(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	s := newStoreServer(t, dir)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	c := ts.Client()

	doJSON(t, c, "POST", ts.URL+"/v1/docs", map[string]any{"doc": "d", "xml": "<a/>"})
	_, acked := doJSON(t, c, "POST", ts.URL+"/v1/docs/d/update",
		map[string]any{"op": "insert", "pattern": "/a", "x": "<x/>"})

	faultinject.Arm("store.append.partial", faultinject.Fault{Kind: faultinject.KindPanic, Times: 1})
	resp, out := doJSON(t, c, "POST", ts.URL+"/v1/docs/d/update",
		map[string]any{"op": "insert", "pattern": "/a", "x": "<y/>"})
	if resp.StatusCode != http.StatusInternalServerError || out["reason"] != "panic" {
		t.Fatalf("killed commit: %d %v", resp.StatusCode, out)
	}
	if s.metrics.Counter("serve.panics").Load() != 1 {
		t.Fatal("panic not counted")
	}

	// The store fail-stopped; the daemon keeps serving.
	resp, out = doJSON(t, c, "POST", ts.URL+"/v1/docs/d/update",
		map[string]any{"op": "read", "pattern": "/a"})
	if resp.StatusCode != http.StatusServiceUnavailable || out["reason"] != "store-closed" {
		t.Fatalf("post-crash store op: %d %v", resp.StatusCode, out)
	}
	resp, _ = doJSON(t, c, "POST", ts.URL+"/v1/detect",
		map[string]any{"read": "//a", "insert": "/*", "x": "<c/>"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detection after store crash: %d", resp.StatusCode)
	}

	// "Restart": recovery over the same directory reproduces exactly
	// the acknowledged state — torn tail cut, digest verified.
	faultinject.Reset()
	rt, err := shard.Open(dir, shard.Options{Shards: 1})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer rt.Close()
	info, err := rt.Get("d")
	if err != nil {
		t.Fatalf("recovered Get: %v", err)
	}
	if info.Digest != acked["digest"].(string) || info.LSN != uint64(acked["lsn"].(float64)) {
		t.Fatalf("recovered digest %.12s lsn %d, want acknowledged %v", info.Digest, info.LSN, acked)
	}
}
