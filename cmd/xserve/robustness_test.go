package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHTTPServerTimeoutsConfigured: the server must not accept
// connections without read/write/idle deadlines (slowloris exposure).
func TestHTTPServerTimeoutsConfigured(t *testing.T) {
	srv := defaultTimeouts().server(http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 {
		t.Fatal("ReadHeaderTimeout unset")
	}
	if srv.ReadTimeout <= 0 {
		t.Fatal("ReadTimeout unset")
	}
	if srv.WriteTimeout <= 0 {
		t.Fatal("WriteTimeout unset")
	}
	if srv.IdleTimeout <= 0 {
		t.Fatal("IdleTimeout unset")
	}
	// The write timeout must comfortably exceed the read-header one: it
	// covers the whole detection.
	if srv.WriteTimeout < srv.ReadHeaderTimeout {
		t.Fatalf("WriteTimeout %v < ReadHeaderTimeout %v", srv.WriteTimeout, srv.ReadHeaderTimeout)
	}
}

// TestInflightGaugeDrainsToZero: the gauge must track releases, not just
// acquisitions — after all load completes it reads 0, not the
// high-water mark.
func TestInflightGaugeDrainsToZero(t *testing.T) {
	s := newServer(4, 10*time.Second, 1<<20)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/detect", "application/json",
				strings.NewReader(`{"read":"//C","insert":"/*/B","x":"<C/>"}`))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	wg.Wait()
	if got := s.metrics.Gauge("serve.inflight").Load(); got != 0 {
		t.Fatalf("inflight gauge = %d after load drained, want 0", got)
	}
}

// TestCanceledRequestFreesSlot: a client disconnecting mid-detection
// must cancel the search and release the pool slot promptly, not pin it
// until the search runs dry.
func TestCanceledRequestFreesSlot(t *testing.T) {
	s := newServer(1, 5*time.Second, 1<<20)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)

	// A heavy NP search: branching read, deep bound, tens of millions of
	// candidates — far longer than this test unless cancellation works.
	heavy := `{"read":"a[b][c]/d","delete":"z/w","max_nodes":8,"max_candidates":50000000}`
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/detect", strings.NewReader(heavy))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()
	// Let the detection start, then hang up.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.Gauge("serve.inflight").Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("detection never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("expected the canceled request to error client-side")
	}

	// The slot must come back and the cancellation must be counted.
	for s.metrics.Gauge("serve.inflight").Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("pool slot never released after cancel")
		}
		time.Sleep(time.Millisecond)
	}
	if s.metrics.Counter("serve.canceled").Load() == 0 {
		t.Fatal("cancellation not counted")
	}
	// And the next request gets the slot immediately.
	resp, data := postDetect(t, ts.URL, `{"read":"//C","insert":"/*/B","x":"<C/>"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after cancel: status = %d (%s)", resp.StatusCode, data)
	}
}

// TestRetryAfterTracksLatency: the 503 backoff hint follows the observed
// detection latency p90 instead of a hardcoded constant.
func TestRetryAfterTracksLatency(t *testing.T) {
	s, ts := testServer(t, 1)
	// Disable the short-TTL memo so the hint reflects the observations
	// injected below immediately (memoization has its own test).
	s.retryTTL = 0
	if got := s.retryAfter("detect"); got != "1" {
		t.Fatalf("retryAfter with no observations = %q, want \"1\"", got)
	}
	for i := 0; i < 20; i++ {
		s.metrics.Timer("serve.detect").Observe(5 * time.Second)
	}
	s.pool <- struct{}{}
	defer func() { <-s.pool }()
	resp, data := postDetect(t, ts.URL, `{"read":"//C","insert":"/*/B"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", resp.StatusCode, data)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer", resp.Header.Get("Retry-After"))
	}
	// The log-bucketed quantile is an upper estimate of the 5s latency,
	// and the clamp caps it at 60.
	if secs < 5 || secs > 60 {
		t.Fatalf("Retry-After = %d, want within [5, 60] for a 5s p90", secs)
	}
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

func TestBatchDetect(t *testing.T) {
	s, ts := testServer(t, 2)
	// Three distinct pairs, each repeated — the shared cache should show
	// hits in /metrics afterwards.
	body := `{"pairs":[
		{"read":"//C","insert":"/*/B","x":"<C/>"},
		{"read":"//A","delete":"//B"},
		{"read":"a[b]/c","delete":"a/c","max_nodes":4,"max_candidates":2000},
		{"read":"//C","insert":"/*/B","x":"<C/>"},
		{"read":"//A","delete":"//B"},
		{"read":"a[b]/c","delete":"a/c","max_nodes":4,"max_candidates":2000}
	]}`
	resp, data := postJSON(t, ts.URL+"/v1/detect/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var br batchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatalf("bad JSON %q: %v", data, err)
	}
	if len(br.Results) != 6 {
		t.Fatalf("%d results, want 6", len(br.Results))
	}
	// Order is preserved: repeats carry the same verdict as the original.
	for i := 0; i < 3; i++ {
		a, b := br.Results[i], br.Results[i+3]
		if a.Conflict != b.Conflict || a.Method != b.Method || a.Detail != b.Detail {
			t.Fatalf("result %d and its repeat %d differ: %+v vs %+v", i, i+3, a, b)
		}
	}
	if !br.Results[0].Conflict {
		t.Fatalf("//C vs insert /*/B must conflict: %+v", br.Results[0])
	}
	hits, misses := s.cache.Counts()
	if misses != 3 || hits != 3 {
		t.Fatalf("cache counts = %d hits / %d misses, want 3 / 3", hits, misses)
	}

	// The cache counters surface on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"xmlconflict_detector_cache_hits 3", "xmlconflict_detector_cache_misses 3"} {
		if !strings.Contains(string(mdata), want) {
			t.Fatalf("missing %q in /metrics:\n%s", want, mdata)
		}
	}
}

func TestBatchDetectRejections(t *testing.T) {
	_, ts := testServer(t, 1)
	for _, tc := range []struct {
		body, wantErr string
	}{
		{`{"pairs":[]}`, "non-empty"},
		{`{"pairs":[{"read":"//A","insert":"//B","tree":"<a/>"}]}`, "pair 0"},
		{`{"pairs":[{"read":"//A","insert":"//B","schema":"root a"}]}`, "pair 0"},
		{`{"pairs":[{"read":"//A","insert":"//B","workers":2}]}`, "pair 0"},
		{`{"pairs":[{"read":"//A","insert":"//B"},{"read":"//A"}]}`, "pair 1"},
	} {
		resp, data := postJSON(t, ts.URL+"/v1/detect/batch", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status = %d (%s), want 400", tc.body, resp.StatusCode, data)
		}
		if !strings.Contains(string(data), tc.wantErr) {
			t.Fatalf("body %q: error %q does not mention %q", tc.body, data, tc.wantErr)
		}
	}
}

func TestAnalyzeEndpoint(t *testing.T) {
	_, ts := testServer(t, 2)
	// The Section 1 imperative fragment: the //C read depends on the
	// insert, the //A read does not.
	body := `{"program":"x = doc <x><B/><A/></x>\ny = read $x//A\ninsert $x/B, <C/>\nz = read $x//C\n","workers":2}`
	resp, data := postJSON(t, ts.URL+"/v1/analyze", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var ar analyzeResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatalf("bad JSON %q: %v", data, err)
	}
	if len(ar.Statements) != 4 {
		t.Fatalf("%d statements, want 4: %+v", len(ar.Statements), ar)
	}
	dep := func(i, j int) bool {
		for _, d := range ar.Dependences {
			if d.I == i && d.J == j {
				return true
			}
		}
		return false
	}
	if !dep(2, 3) {
		t.Fatalf("read //C must depend on the insert: %+v", ar.Dependences)
	}
	if dep(1, 2) {
		t.Fatalf("read //A must not depend on the insert: %+v", ar.Dependences)
	}
	if len(ar.Schedule) == 0 {
		t.Fatalf("empty schedule: %+v", ar)
	}
}

func TestAnalyzeEndpointRejections(t *testing.T) {
	_, ts := testServer(t, 1)
	for _, body := range []string{
		`{}`,                               // no program
		`{"program":"x = doc <a/>\nboom"}`, // parse error
		`{"program":"x = doc <a/>","semantics":"?"}`, // bad semantics
	} {
		resp, data := postJSON(t, ts.URL+"/v1/analyze", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status = %d (%s), want 400", body, resp.StatusCode, data)
		}
	}
}

// TestDetectUsesProcessCache: repeated plain detections hit the
// process-lifetime cache.
func TestDetectUsesProcessCache(t *testing.T) {
	s, ts := testServer(t, 1)
	for i := 0; i < 3; i++ {
		resp, data := postDetect(t, ts.URL, `{"read":"//C","insert":"/*/B","x":"<C/>"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d: %s", resp.StatusCode, data)
		}
	}
	if hits, misses := s.cache.Counts(); hits != 2 || misses != 1 {
		t.Fatalf("cache counts = %d hits / %d misses, want 2 / 1", hits, misses)
	}
}
