package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xmlconflict/internal/faultinject"
	"xmlconflict/internal/shard"
)

// shardedDocs returns one document name owned by each shard.
func shardedDocs(t *testing.T, s *server) []string {
	t.Helper()
	docs := make([]string, s.store.Shards())
	for i := range docs {
		for n := 0; ; n++ {
			name := fmt.Sprintf("doc-%d", n)
			if s.store.ShardFor(name) == i {
				docs[i] = name
				break
			}
			if n > 10000 {
				t.Fatalf("no doc name found for shard %d", i)
			}
		}
	}
	return docs
}

// TestChaosShardFailStop503Scoped: a kill-site fault on one shard's
// WAL fail-stops exactly that shard — its documents answer 503
// store-closed — while documents on every other shard (and /v1/detect)
// keep serving. The sharded form of the fail-stop containment domain.
func TestChaosShardFailStop503Scoped(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s := newShardedServer(t, t.TempDir(), 4)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	c := ts.Client()

	docs := shardedDocs(t, s)
	for _, doc := range docs {
		if resp, out := doJSON(t, c, "POST", ts.URL+"/v1/docs", map[string]any{"doc": doc, "xml": "<a/>"}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d %v", doc, resp.StatusCode, out)
		}
	}

	const victim = 2
	faultinject.Arm("store.append", faultinject.Fault{Kind: faultinject.KindPanic, Times: 1})
	resp, out := doJSON(t, c, "POST", ts.URL+"/v1/docs/"+docs[victim]+"/update",
		map[string]any{"op": "insert", "pattern": "/a", "x": "<x/>"})
	if resp.StatusCode != http.StatusInternalServerError || out["reason"] != "panic" {
		t.Fatalf("killed commit: %d %v", resp.StatusCode, out)
	}

	// The victim shard's documents are 503 store-closed...
	resp, out = doJSON(t, c, "POST", ts.URL+"/v1/docs/"+docs[victim]+"/update",
		map[string]any{"op": "read", "pattern": "/a"})
	if resp.StatusCode != http.StatusServiceUnavailable || out["reason"] != "store-closed" {
		t.Fatalf("victim shard post-kill: %d %v", resp.StatusCode, out)
	}
	// ...while every other shard keeps committing.
	for i, doc := range docs {
		if i == victim {
			continue
		}
		resp, out = doJSON(t, c, "POST", ts.URL+"/v1/docs/"+doc+"/update",
			map[string]any{"op": "insert", "pattern": "/a", "x": "<z/>"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthy shard %d rejected an update after shard %d died: %d %v", i, victim, resp.StatusCode, out)
		}
	}
	// Detection is untouched.
	resp, _ = doJSON(t, c, "POST", ts.URL+"/v1/detect",
		map[string]any{"read": "//a", "insert": "/*", "x": "<c/>"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detection after shard kill: %d", resp.StatusCode)
	}
}

// TestDocsListCrossShard: GET /v1/docs gathers every shard into one
// sorted listing with shard attribution.
func TestDocsListCrossShard(t *testing.T) {
	s := newShardedServer(t, t.TempDir(), 4)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	c := ts.Client()

	for i := 0; i < 12; i++ {
		doc := fmt.Sprintf("doc-%02d", i)
		if resp, out := doJSON(t, c, "POST", ts.URL+"/v1/docs", map[string]any{"doc": doc, "xml": "<a/>"}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d %v", doc, resp.StatusCode, out)
		}
	}
	resp, out := doJSON(t, c, "GET", ts.URL+"/v1/docs", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d %v", resp.StatusCode, out)
	}
	if int(out["shards"].(float64)) != 4 {
		t.Fatalf("list shards = %v, want 4", out["shards"])
	}
	entries := out["docs"].([]any)
	if len(entries) != 12 {
		t.Fatalf("list returned %d docs, want 12", len(entries))
	}
	prev := ""
	for _, e := range entries {
		m := e.(map[string]any)
		doc := m["doc"].(string)
		if doc <= prev {
			t.Fatalf("listing not sorted: %q after %q", doc, prev)
		}
		prev = doc
		if got := int(m["shard"].(float64)); got != s.store.ShardFor(doc) {
			t.Fatalf("doc %s listed on shard %d, router says %d", doc, got, s.store.ShardFor(doc))
		}
	}
}

// TestTenantQuota429: a tenant at its inflight allowance gets the 429
// quota envelope (with a Retry-After hint) whether the tenant comes
// from the X-Tenant header or the doc-name prefix, while other tenants
// are untouched.
func TestTenantQuota429(t *testing.T) {
	s := newStoreServer(t, t.TempDir())
	s.tenants = shard.NewTenantLimiter(1, s.metrics)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	c := ts.Client()

	// Pin acme's single slot so the next acme request finds it taken.
	release, err := s.tenants.Acquire("acme")
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	req, _ := http.NewRequest("POST", ts.URL+"/v1/docs", strings.NewReader(`{"doc":"d1","xml":"<a/>"}`))
	req.Header.Set("X-Tenant", "acme")
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("header tenant over quota: %d (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(string(body), `"tenant-quota"`) {
		t.Fatalf("429 body missing tenant-quota reason: %s", body)
	}

	// Doc-name prefix carries the same tenant.
	resp2, out := doJSON(t, c, "POST", ts.URL+"/v1/docs", map[string]any{"doc": "acme--d2", "xml": "<a/>"})
	if resp2.StatusCode != http.StatusTooManyRequests || out["reason"] != "tenant-quota" {
		t.Fatalf("prefix tenant over quota: %d %v", resp2.StatusCode, out)
	}

	// A different tenant sails through.
	resp3, out := doJSON(t, c, "POST", ts.URL+"/v1/docs", map[string]any{"doc": "beta--d3", "xml": "<a/>"})
	if resp3.StatusCode != http.StatusCreated {
		t.Fatalf("other tenant blocked: %d %v", resp3.StatusCode, out)
	}

	if s.metrics.Counter("serve.tenant_rejected").Load() != 2 {
		t.Fatalf("serve.tenant_rejected = %d, want 2", s.metrics.Counter("serve.tenant_rejected").Load())
	}
	snap := s.metrics.Snapshot()
	if snap.Counter("tenant.rejected|tenant=acme") != 2 {
		t.Fatalf("tenant.rejected|tenant=acme = %d, want 2", snap.Counter("tenant.rejected|tenant=acme"))
	}
}

// TestTenantHeaderInjectionFoldsToInvalid: hostile X-Tenant values —
// label separators, newlines, oversized ids — must not mint metric
// series named by attacker bytes. They all fold into the one ~invalid
// bucket; the requests themselves are still served and counted there.
func TestTenantHeaderInjectionFoldsToInvalid(t *testing.T) {
	s := newStoreServer(t, t.TempDir())
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	c := ts.Client()

	hostile := []string{
		"evil|tenant=x",         // label separator injection
		"a=b",                   // key=value injection
		"tab\there",             // control byte (newlines can't cross net/http; see the unit test)
		"../../etc/passwd",      // path traversal shape
		strings.Repeat("x", 65), // over the length cap
		"name with spaces",      // whitespace
	}
	for i, h := range hostile {
		body := fmt.Sprintf(`{"doc":"h%d","xml":"<a/>"}`, i)
		req, _ := http.NewRequest("POST", ts.URL+"/v1/docs", strings.NewReader(body))
		req.Header.Set("X-Tenant", h)
		resp, err := c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("hostile header %q rejected the request itself: %d", h, resp.StatusCode)
		}
	}

	snap := s.metrics.Snapshot()
	if got := snap.Counter("tenant.requests|tenant=~invalid"); got != int64(len(hostile)) {
		t.Fatalf("tenant.requests|tenant=~invalid = %d, want %d", got, len(hostile))
	}
	// No attacker-named series leaked into the registry.
	for name := range snap.Counters {
		if strings.Contains(name, "evil") || strings.Contains(name, "passwd") ||
			strings.Contains(name, "\n") || strings.Contains(name, "tenant=x") {
			t.Fatalf("attacker-controlled series in registry: %q", name)
		}
	}
	// The /metrics exposition stays parseable: no raw header bytes.
	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, frag := range []string{"evil", "passwd", "a=b"} {
		if strings.Contains(string(text), frag) {
			t.Fatalf("/metrics carries hostile fragment %q", frag)
		}
	}

	// A well-formed tenant id still gets its own series.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/docs", strings.NewReader(`{"doc":"ok1","xml":"<a/>"}`))
	req.Header.Set("X-Tenant", "acme-1.prod_2")
	resp2, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := s.metrics.Snapshot().Counter("tenant.requests|tenant=acme-1.prod_2"); got != 1 {
		t.Fatalf("legit tenant series = %d, want 1", got)
	}
}

// TestShardedMetricsExposition: with S > 1 every shard's store.*
// series appears on /metrics as a labeled sample under a single TYPE
// line per family.
func TestShardedMetricsExposition(t *testing.T) {
	s := newShardedServer(t, t.TempDir(), 2)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	c := ts.Client()

	for _, doc := range shardedDocs(t, s) {
		if resp, out := doJSON(t, c, "POST", ts.URL+"/v1/docs", map[string]any{"doc": doc, "xml": "<a/>"}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d %v", doc, resp.StatusCode, out)
		}
	}
	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for i := 0; i < 2; i++ {
		want := fmt.Sprintf(`store_appends{shard="%d"}`, i)
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if n := strings.Count(text, "# TYPE xmlconflict_store_appends counter"); n != 1 {
		t.Errorf("TYPE line for store_appends appears %d times, want 1", n)
	}
}

// TestRetryAfterPerRouteScope is the regression for the process-global
// p90 bug: saturating the docs route (fsync-bound shards) must not
// inflate the detect route's backoff hint, and — the cold-start case —
// a route with no observations answers the 1-second floor even while
// the other route's p90 is high. The post-drain case: when a route's
// saturation ends, its next hint (after the memo TTL) re-derives from
// its own distribution, not the other route's.
func TestRetryAfterPerRouteScope(t *testing.T) {
	s := newServer(1, time.Second, 1<<20)
	s.retryTTL = 0 // derive fresh each call; memoization has its own test

	// Cold start: both routes floor at 1s.
	if got := s.retryAfter("docs"); got != "1" {
		t.Fatalf("docs cold start: %q, want 1", got)
	}
	// Saturate docs (slow fsync-bound commits); detect stays cold.
	for i := 0; i < 20; i++ {
		s.metrics.Timer("serve.docs").Observe(8 * time.Second)
	}
	if got := s.retryAfter("detect"); got != "1" {
		t.Fatalf("detect hint inherited docs saturation: %q, want 1", got)
	}
	if got := s.retryAfter("docs"); got == "1" {
		t.Fatalf("docs hint ignores its own 8s p90: %q", got)
	}

	// And the reverse: detect saturation must not leak into docs' memo.
	s2 := newServer(1, time.Second, 1<<20)
	s2.retryTTL = time.Hour
	for i := 0; i < 20; i++ {
		s2.metrics.Timer("serve.detect").Observe(30 * time.Second)
	}
	if got := s2.retryAfter("docs"); got != "1" {
		t.Fatalf("docs cold start under detect load: %q, want 1", got)
	}
	// Post-drain: docs observations arrive, the stale memo holds until
	// its deadline, then the hint tracks the docs distribution.
	for i := 0; i < 20; i++ {
		s2.metrics.Timer("serve.docs").Observe(8 * time.Second)
	}
	if got := s2.retryAfter("docs"); got != "1" {
		t.Fatalf("docs hint recomputed inside TTL: %q, want memoized 1", got)
	}
	s2.retry["docs"].until.Store(0)
	if got := s2.retryAfter("docs"); got == "1" || got == "30" {
		t.Fatalf("docs hint after memo expiry: %q, want its own ~8s p90, not the floor or detect's 30s", got)
	}

	// Unknown routes fall back to the detect distribution.
	s2.retry["detect"].until.Store(0)
	if got := s2.retryAfter("no-such-route"); got == "1" {
		t.Fatalf("unknown route ignored detect's 30s p90: %q", got)
	}
}
