package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"xmlconflict/internal/telemetry/span"
)

// dumpTracesOnFailure writes the server's captured traces under
// $XC_TRACE_ARTIFACTS/<test-name> when the test fails, so a CI failure
// ships the flight recorder's evidence as a build artifact.
func dumpTracesOnFailure(t *testing.T, s *server) {
	t.Cleanup(func() {
		root := os.Getenv("XC_TRACE_ARTIFACTS")
		if root == "" || !t.Failed() {
			return
		}
		dir := filepath.Join(root, strings.ReplaceAll(t.Name(), "/", "_"))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("trace artifacts: %v", err)
			return
		}
		n, err := s.recorder.DumpDir(dir)
		t.Logf("trace artifacts: dumped %d traces to %s (err=%v)", n, dir, err)
	})
}

// treeSpans collects every span with the given name, depth-first.
func treeSpans(v span.SpanView, name string) []span.SpanView {
	var out []span.SpanView
	if v.Name == name {
		out = append(out, v)
	}
	for _, c := range v.Children {
		out = append(out, treeSpans(c, name)...)
	}
	return out
}

func getTrace(t *testing.T, url, id string) span.TraceView {
	t.Helper()
	resp, err := http.Get(url + "/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/trace/%s = %d: %s", id, resp.StatusCode, data)
	}
	var v span.TraceView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("trace JSON: %v: %s", err, data)
	}
	return v
}

// TestConflictTraceForensics is the acceptance path: a conflicting
// /v1/docs update answers 409 with a trace_id, and /v1/trace/{id}
// replays the handler, queue wait, admission verdict (fired semantics
// + cache disposition), and — on the committed update it collided
// with — the WAL append and fsync spans with durations.
func TestConflictTraceForensics(t *testing.T) {
	s := newStoreServer(t, t.TempDir())
	dumpTracesOnFailure(t, s)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	c := ts.Client()

	resp, body := doJSON(t, c, "POST", ts.URL+"/v1/docs", map[string]any{"doc": "d", "xml": "<a/>"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create = %d: %v", resp.StatusCode, body)
	}
	base := body["lsn"].(float64)

	resp, body = doJSON(t, c, "POST", ts.URL+"/v1/docs/d/update",
		map[string]any{"op": "insert", "pattern": "/a", "x": "<x/>"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert = %d: %v", resp.StatusCode, body)
	}
	okID, _ := body["trace_id"].(string)
	if okID == "" {
		t.Fatalf("committed update has no trace_id: %v", body)
	}

	// delete //x against the pre-insert base does not commute with the
	// committed insert of <x/>: rejected, with forensics.
	resp, body = doJSON(t, c, "POST", ts.URL+"/v1/docs/d/update",
		map[string]any{"op": "delete", "pattern": "//x", "base_lsn": base})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale delete = %d, want 409: %v", resp.StatusCode, body)
	}
	tid, _ := body["trace_id"].(string)
	if tid == "" {
		t.Fatalf("409 envelope has no trace_id: %v", body)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != tid {
		t.Fatalf("X-Trace-Id %q != envelope trace_id %q", got, tid)
	}

	// The conflicting request's span tree.
	v := getTrace(t, ts.URL, tid)
	if v.Root.Name != "docs.update" {
		t.Fatalf("root span = %q, want docs.update", v.Root.Name)
	}
	if len(treeSpans(v.Root, "queue.wait")) != 1 {
		t.Fatal("trace does not name the queue wait")
	}
	adm := treeSpans(v.Root, "store.admit")
	if len(adm) != 1 {
		t.Fatalf("store.admit spans = %d, want 1", len(adm))
	}
	a := adm[0]
	if a.Attrs["conflict"] != true || a.Attrs["fired"] == "" || a.Attrs["cache"] != "bypass" {
		t.Fatalf("admit verdict attrs incomplete: %+v", a.Attrs)
	}
	for _, key := range []string{"sem", "base_lsn", "with_lsn", "with_kind", "window"} {
		if _, has := a.Attrs[key]; !has {
			t.Fatalf("admit span missing %q: %+v", key, a.Attrs)
		}
	}
	hasConflictFlag := false
	for _, f := range v.Flags {
		if f == "conflict" {
			hasConflictFlag = true
		}
	}
	if !hasConflictFlag {
		t.Fatalf("trace flags = %v, want conflict (always-kept capture)", v.Flags)
	}

	// The committed update it collided with shows the durability spans.
	okv := getTrace(t, ts.URL, okID)
	for _, name := range []string{"store.update", "store.admit", "store.wal.append", "store.fsync"} {
		got := treeSpans(okv.Root, name)
		if len(got) != 1 {
			t.Fatalf("committed trace: %s spans = %d, want 1", name, len(got))
		}
		if got[0].Open || got[0].DurationUs < 0 {
			t.Fatalf("committed trace: %s span has no closed duration: %+v", name, got[0])
		}
	}

	// Unknown IDs answer the uniform 404 envelope.
	resp404, err := http.Get(ts.URL + "/v1/trace/ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404", resp404.StatusCode)
	}
}

// TestTraceparentContinuation: an incoming W3C traceparent pins the
// trace ID so an external caller can correlate, and the reply emits a
// traceparent for the next hop.
func TestTraceparentContinuation(t *testing.T) {
	s, ts := testServer(t, 2)
	dumpTracesOnFailure(t, s)
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest("POST", ts.URL+"/v1/detect",
		strings.NewReader(`{"read":"//C","insert":"/*/B","x":"<C/>"}`))
	req.Header.Set("traceparent", "00-"+tid+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != tid {
		t.Fatalf("X-Trace-Id = %q, want the inbound trace ID %q", got, tid)
	}
	tp := resp.Header.Get("traceparent")
	if !strings.HasPrefix(tp, "00-"+tid+"-") {
		t.Fatalf("response traceparent = %q, want continuation of %q", tp, tid)
	}
	// The continued trace is fetchable under the caller's ID, and its
	// tree reaches the detector.
	v := getTrace(t, ts.URL, tid)
	if len(treeSpans(v.Root, "detect.cached")) == 0 {
		t.Fatal("continued trace does not reach the detector cache")
	}
}

// TestRetryAfterClampAndMemoization pins the [1, 60] clamp on both
// edges and the short-TTL memo that keeps load-shed storms from
// re-walking the latency histogram per rejection.
func TestRetryAfterClampAndMemoization(t *testing.T) {
	s := newServer(1, time.Second, 1<<20)
	if got := s.retryAfter("detect"); got != "1" {
		t.Fatalf("no observations: %q, want 1 (lower clamp)", got)
	}
	for i := 0; i < 20; i++ {
		s.metrics.Timer("serve.detect").Observe(2 * time.Hour)
	}
	// Inside the TTL the derivation must not rerun: stale hint.
	if got := s.retryAfter("detect"); got != "1" {
		t.Fatalf("inside TTL: %q, want memoized 1", got)
	}
	// After expiry the recomputed hint hits the upper clamp.
	s.retry["detect"].until.Store(0)
	if got := s.retryAfter("detect"); got != "60" {
		t.Fatalf("after expiry: %q, want 60 (upper clamp)", got)
	}
}

// TestDebugRequestsJSONUnderLoad: the flight-recorder listing stays
// valid JSON while traffic churns the rings.
func TestDebugRequestsJSONUnderLoad(t *testing.T) {
	s, ts := testServer(t, 4)
	dumpTracesOnFailure(t, s)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/detect", "application/json",
					strings.NewReader(`{"read":"//C","insert":"/*/B","x":"<C/>"}`))
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	var snap span.RecorderSnapshot
	for i := 0; i < 50; i++ {
		resp, err := http.Get(ts.URL + "/debug/requests")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/debug/requests = %d: %s", resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Fatalf("poll %d: invalid JSON: %v: %.200s", i, err, data)
		}
	}
	close(stop)
	wg.Wait()
	if snap.Total == 0 || len(snap.Recent) == 0 {
		t.Fatalf("recorder saw no traffic: %+v", snap)
	}
	// Per-trace detail parses too.
	resp, err := http.Get(ts.URL + "/debug/requests/" + snap.Recent[0].TraceID)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var v span.TraceView
	if resp.StatusCode != http.StatusOK || json.Unmarshal(data, &v) != nil {
		t.Fatalf("/debug/requests/{id} = %d: %.200s", resp.StatusCode, data)
	}
}

// TestErrorTraceCaptured: a contained handler panic earns the error
// flag, so the trace is an always-kept capture.
func TestErrorTraceCaptured(t *testing.T) {
	s, ts := testServer(t, 2)
	dumpTracesOnFailure(t, s)
	// An unknown semantics name inside a batch item reaches parsePair
	// and 400s; a panic needs faultinject — use the degraded path
	// instead: a search with a tiny candidate budget degrades and must
	// be captured.
	resp, data := postDetect(t, ts.URL, `{"read":"//A[B][C]/D","delete":"//B","max_nodes":6,"max_candidates":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded detect = %d: %s", resp.StatusCode, data)
	}
	var dr detectResponse
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Complete {
		t.Skip("search completed within one candidate; cannot exercise degradation here")
	}
	tid := resp.Header.Get("X-Trace-Id")
	v := getTrace(t, ts.URL, tid)
	found := false
	for _, f := range v.Flags {
		if f == "degraded" {
			found = true
		}
	}
	if !found {
		t.Fatalf("degraded request's trace flags = %v, want degraded", v.Flags)
	}
}
