// Command xserve is the long-running conflict-detection daemon: the
// engine of "Conflicting XML Updates" (EDBT 2006) behind an HTTP API,
// with the full live observability surface of internal/telemetry.
//
// Usage:
//
//	xserve [-listen :8344] [-pool N] [-queue-timeout 2s] [-max-body 1048576]
//	       [-read-header-timeout 5s] [-read-timeout 30s]
//	       [-write-timeout 2m] [-idle-timeout 2m]
//
// API:
//
//	POST /v1/detect
//	    {"read": "//A[B]", "insert": "/*/B", "x": "<C/>",
//	     "semantics": "node", "max_nodes": 8, "max_candidates": 100000,
//	     "schema": "...", "tree": "<a>...</a>", "workers": 0}
//	    -> {"conflict": true, "method": "search", "complete": true,
//	        "witness": "<a>...</a>", "candidates": 712, "elapsed_us": 3100}
//
//	POST /v1/detect/batch
//	    {"pairs": [{"read": ..., "insert"/"delete": ...}, ...]}
//	    -> {"results": [...one detect reply per pair, in order...],
//	        "elapsed_us": 4100}
//
//	POST /v1/analyze
//	    {"program": "x = doc <a/>\ny = read $x//b\n...",
//	     "semantics": "node", "max_nodes": 6, "max_candidates": 200000,
//	     "workers": 0}
//	    -> {"statements": [...], "dependences": [{"i":1,"j":2,"reason":...}],
//	        "hoistable_reads": [...], "redundant_reads": [[0,3]],
//	        "schedule": [[0],[1,2],...], "elapsed_us": 9000}
//
// With -store-dir the daemon also serves a durable document store
// (see store.go in this package): clients register named XML trees
// under POST /v1/docs, read and update them through the conflict
// detector's optimistic admission (POST /v1/docs/{id}/update), and the
// store write-ahead-logs every commit (fsync policy -store-fsync),
// snapshots periodically (-store-snapshot-every), and recovers to
// exactly the acknowledged prefix after a crash. store.* counters
// (appends, fsync timings, recoveries, torn tails, conflict
// rejections) ride the same /metrics surface.
//
// Exactly one of "insert"/"delete" must be given per detect pair. With
// "tree" the request is a witness check on that document (Lemma 1,
// polynomial); with "schema" the search is restricted to schema-valid
// witnesses; with "workers" > 0 the NP-case search fans out over that
// many goroutines. Batch pairs accept only the plain form (no
// schema/tree/workers). All other fields bound the witness search
// exactly like xconflict's flags.
//
// Failure model: a search that exhausts its budget ("deadline_ms",
// "max_candidates") degrades — the reply is still 200, with "complete":
// false and a machine-readable "reason" ("deadline", "candidate-cap",
// ...) — it never errors. Every non-2xx reply is the uniform JSON
// envelope {"error": ..., "reason": ...}. A panic anywhere in a request
// is contained at the handler (and, for batches, at the worker) so only
// the offending request or pair fails; batch replies carry a per-item
// "error" field and the daemon keeps serving.
//
// Plain detections, batch pairs, and analyze cross-checks all share one
// process-lifetime verdict cache, so repeated patterns — the common case
// for clients deciding program fragments — are decided once.
//
// Observability (same mux):
//
//	GET /metrics        Prometheus text exposition: serve_detect_seconds
//	                    p50/p90/p99, request/error/conflict counters,
//	                    detector-cache hits/misses, and every engine
//	                    counter (candidates, cache traffic, ...)
//	GET /debug/vars     expvar JSON snapshot
//	GET /debug/pprof/*  live CPU/heap/trace profiling
//	GET /healthz        liveness
//	GET /readyz         readiness (503 while draining)
//
// Detection work runs on a bounded worker pool (-pool, default
// GOMAXPROCS): excess requests wait up to -queue-timeout for a slot and
// are then rejected with 503 + Retry-After (derived from the observed
// detection latency p90), keeping tail latency bounded under overload
// instead of collapsing. A client that disconnects mid-request cancels
// its detection — the search polls the request context — so abandoned
// work frees its pool slot promptly. SIGINT/SIGTERM drain gracefully:
// readiness flips first, in-flight detections finish.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"xmlconflict"
	"xmlconflict/internal/faultinject"
	"xmlconflict/internal/replica"
	"xmlconflict/internal/shard"
	"xmlconflict/internal/store"
	"xmlconflict/internal/telemetry"
	"xmlconflict/internal/telemetry/obshttp"
	"xmlconflict/internal/telemetry/span"
)

// detectRequest is the POST /v1/detect body, stable for tooling.
type detectRequest struct {
	Read          string `json:"read"`
	Insert        string `json:"insert,omitempty"`
	X             string `json:"x,omitempty"`
	Delete        string `json:"delete,omitempty"`
	Semantics     string `json:"semantics,omitempty"`
	MaxNodes      int    `json:"max_nodes,omitempty"`
	MaxCandidates int    `json:"max_candidates,omitempty"`
	// DeadlineMs bounds the search in wall-clock time: when it lapses
	// the reply is still 200, with "complete": false and "reason":
	// "deadline" — degraded, never an error.
	DeadlineMs int    `json:"deadline_ms,omitempty"`
	Schema     string `json:"schema,omitempty"`
	Tree       string `json:"tree,omitempty"`
	Workers    int    `json:"workers,omitempty"`
}

// detectResponse is the POST /v1/detect reply, stable for tooling.
// Reason is the machine-readable cause when "complete" is false
// ("candidate-cap", "deadline", ...). In batch replies a pair that
// failed on its own carries Error (and Reason "panic" for a contained
// crash) while its batch-mates answer normally.
type detectResponse struct {
	Conflict   bool     `json:"conflict"`
	Method     string   `json:"method"`
	Complete   bool     `json:"complete"`
	Semantics  string   `json:"semantics"`
	Reason     string   `json:"reason,omitempty"`
	Detail     string   `json:"detail,omitempty"`
	Edge       int      `json:"edge,omitempty"`
	Word       []string `json:"word,omitempty"`
	Witness    string   `json:"witness,omitempty"`
	Candidates int      `json:"candidates,omitempty"`
	Error      string   `json:"error,omitempty"`
	ElapsedUs  int64    `json:"elapsed_us"`
}

// batchRequest is the POST /v1/detect/batch body: plain detect pairs
// only (no schema/tree/workers per pair). DeadlineMs bounds the whole
// batch's wall-clock time; pairs that run out answer "complete": false
// with "reason": "deadline".
type batchRequest struct {
	Pairs      []detectRequest `json:"pairs"`
	DeadlineMs int             `json:"deadline_ms,omitempty"`
}

// batchResponse replies with one result per pair, in request order.
type batchResponse struct {
	Results   []detectResponse `json:"results"`
	ElapsedUs int64            `json:"elapsed_us"`
}

// analyzeRequest is the POST /v1/analyze body: a pidgin program and the
// analysis knobs.
type analyzeRequest struct {
	Program       string `json:"program"`
	Semantics     string `json:"semantics,omitempty"`
	MaxNodes      int    `json:"max_nodes,omitempty"`
	MaxCandidates int    `json:"max_candidates,omitempty"`
	DeadlineMs    int    `json:"deadline_ms,omitempty"`
	Workers       int    `json:"workers,omitempty"`
}

// analyzeDependence is one edge of the dependence relation.
type analyzeDependence struct {
	I      int    `json:"i"`
	J      int    `json:"j"`
	Reason string `json:"reason"`
}

// analyzeResponse is the dependence matrix plus the optimization
// opportunities the paper motivates.
type analyzeResponse struct {
	Statements     []string            `json:"statements"`
	Dependences    []analyzeDependence `json:"dependences"`
	HoistableReads []int               `json:"hoistable_reads,omitempty"`
	RedundantReads [][2]int            `json:"redundant_reads,omitempty"`
	Schedule       [][]int             `json:"schedule"`
	ElapsedUs      int64               `json:"elapsed_us"`
}

// errorResponse is the uniform error envelope every non-2xx API reply
// uses: a human-readable message plus a machine-readable reason
// ("bad-request", "saturated", "panic", "internal", "draining",
// "method-not-allowed", "unprocessable").
type errorResponse struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
	// Conflict is attached to 409 rejections from the document store:
	// the committed update the operation collided with and which
	// conflict semantics fired.
	Conflict *conflictInfo `json:"conflict,omitempty"`
	// TraceID names the request's span tree for conflict forensics:
	// rejected and errored traces are always kept by the flight
	// recorder, replayable via GET /v1/trace/{id}.
	TraceID string `json:"trace_id,omitempty"`
}

// writeErr writes the uniform JSON error envelope.
func writeErr(w http.ResponseWriter, status int, reason, msg string) {
	writeJSON(w, status, errorResponse{Error: msg, Reason: reason})
}

// reasonFor maps an HTTP error status to the envelope's default reason.
func reasonFor(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad-request"
	case http.StatusMethodNotAllowed:
		return "method-not-allowed"
	case http.StatusServiceUnavailable:
		return "saturated"
	case http.StatusInternalServerError:
		return "internal"
	default:
		return "unprocessable"
	}
}

// server carries the daemon's shared state: the metrics registry every
// request records into, the bounded worker pool, the process-lifetime
// verdict cache, and the readiness bit.
type server struct {
	metrics      *telemetry.Metrics
	cache        *xmlconflict.DetectorCache
	pool         chan struct{}
	queueTimeout time.Duration
	maxBody      int64
	ready        atomic.Bool
	// recorder holds completed request traces: a ring of recent ones
	// plus always-kept captures of slow/errored/degraded/conflicting
	// requests, served at /debug/requests and /v1/trace/{id}.
	recorder *span.FlightRecorder
	// retry memoizes the Retry-After derivation per route for retryTTL:
	// under saturation every shed request would otherwise walk a latency
	// histogram. Scoped per route because the routes saturate
	// independently — a fsync-bound docs shard must not inherit the
	// detect route's p90 (or its cold 1s floor) and vice versa.
	retryTTL time.Duration
	retry    map[string]*retryMemo
	// store routes /v1/docs operations to the shard owning each
	// document; nil unless -store-dir was given (the routes are not
	// mounted without it). With -shards 1 it wraps a single store.
	store *shard.Router
	// node is the replication layer over the store; nil unless
	// -repl-node was given. When set, store is node.Router() and
	// /v1/docs writes commit through the node (see repl.go).
	node             *replica.Node
	replHC           *http.Client
	replProxyTimeout time.Duration
	// replAdmin mounts the cluster-lifecycle admin endpoints (join,
	// leave, runtime fault arming); off unless -repl-admin was given.
	replAdmin bool
	// replMinLSNWait bounds how long a read carrying X-Min-LSN waits for
	// the local shard to reach the requested position before 503.
	replMinLSNWait time.Duration
	// tenants bounds per-tenant inflight document operations (429 past
	// the allowance) and records per-tenant traffic.
	tenants *shard.TenantLimiter
	// identity is the server's build/config identity served on /healthz:
	// what a load harness records so a report names exactly the
	// configuration that produced its numbers. Written before serving
	// starts, read-only afterwards.
	identity map[string]string
}

func newServer(pool int, queueTimeout time.Duration, maxBody int64) *server {
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	if queueTimeout <= 0 {
		queueTimeout = 2 * time.Second
	}
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	s := &server{
		metrics:      telemetry.New(),
		cache:        xmlconflict.NewDetectorCache(0),
		pool:         make(chan struct{}, pool),
		queueTimeout: queueTimeout,
		maxBody:      maxBody,
		recorder:     span.NewFlightRecorder(span.RecorderOptions{}),
		retryTTL:     time.Second,
		retry:        map[string]*retryMemo{"detect": {}, "docs": {}},

		replHC:           &http.Client{Timeout: 5 * time.Second},
		replProxyTimeout: 5 * time.Second,
		replMinLSNWait:   250 * time.Millisecond,
	}
	s.tenants = shard.NewTenantLimiter(0, s.metrics)
	s.cache.Instrument(s.metrics)
	s.ready.Store(true)
	s.identity = map[string]string{
		"service":       "xserve",
		"go":            runtime.Version(),
		"pool":          strconv.Itoa(cap(s.pool)),
		"queue_timeout": s.queueTimeout.String(),
		"max_body":      strconv.FormatInt(s.maxBody, 10),
		"cache_cap":     strconv.Itoa(s.cache.Cap()),
		"store":         "off",
	}
	return s
}

// routes mounts the API and the observability surface on one mux. Every
// API handler runs inside the containment wrapper: a panic fails its own
// request with a 500 envelope while the daemon keeps serving.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/detect", s.traced("detect", s.contained(s.handleDetect)))
	mux.HandleFunc("/v1/detect/batch", s.traced("batch", s.contained(s.handleBatch)))
	mux.HandleFunc("/v1/analyze", s.traced("analyze", s.contained(s.handleAnalyze)))
	// Trace inspection is itself untraced: reading the recorder must not
	// churn the rings it reads.
	mux.HandleFunc("GET /v1/trace/{id}", s.handleTraceGet)
	if s.store != nil {
		s.storeRoutes(mux)
	}
	if s.node != nil {
		// The replication protocol rides the same mux: peers call
		// /v1/repl/append etc. on the public listener.
		mux.Handle("/v1/repl/", s.node.Handler())
		if s.replAdmin {
			// Specific patterns outrank the /v1/repl/ subtree, so the
			// admin surface coexists with the protocol handler.
			mux.HandleFunc("POST /v1/repl/join", s.traced("repl.join", s.contained(s.handleReplJoin)))
			mux.HandleFunc("POST /v1/repl/leave", s.traced("repl.leave", s.contained(s.handleReplLeave)))
			mux.HandleFunc("POST /v1/repl/faults", s.traced("repl.faults", s.contained(s.handleReplFaults)))
		}
	}
	obshttp.Mount(mux, obshttp.Options{
		Metrics: s.metrics, Ready: s.ready.Load, RetryAfter: func() string { return s.retryAfter("detect") }, Recorder: s.recorder,
		Identity: func() map[string]string { return s.identity },
	})
	return mux
}

// contained is the handler-boundary half of the fault-containment layer:
// it recovers a panicking handler into a 500 JSON envelope and the
// serve.panics counter, so one poisoned request cannot take the process
// (net/http would otherwise only save the connection, and a panic past a
// pool-slot acquire could leak the slot forever). http.ErrAbortHandler
// is re-raised: it is the stdlib's own "abandon this response" signal.
func (s *server) contained(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.metrics.Add("serve.panics", 1)
				s.metrics.Add("serve.errors", 1)
				writeErr(w, http.StatusInternalServerError, "panic", fmt.Sprintf("internal error: %v", rec))
			}
		}()
		h(w, r)
	}
}

// httpTimeouts bounds every phase of a connection's life so one slow or
// stalled client (slowloris, dead TCP peer) cannot pin a connection —
// and with it server memory — indefinitely.
type httpTimeouts struct {
	readHeader, read, write, idle time.Duration
}

func defaultTimeouts() httpTimeouts {
	return httpTimeouts{
		readHeader: 5 * time.Second,
		read:       30 * time.Second,
		write:      2 * time.Minute,
		idle:       2 * time.Minute,
	}
}

// server builds the http.Server with the timeouts applied.
func (t httpTimeouts) server(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: t.readHeader,
		ReadTimeout:       t.read,
		WriteTimeout:      t.write,
		IdleTimeout:       t.idle,
	}
}

var errQueueTimeout = errors.New("worker pool saturated")

// acquireSlot blocks until a pool slot frees, the request's context
// dies, or the queue timeout lapses. The inflight gauge tracks both
// edges — set on acquire AND on release — so it drains back to zero when
// the server goes idle instead of sticking at the high-water mark.
func (s *server) acquireSlot(ctx context.Context) (release func(), err error) {
	// The queue wait is its own span: under saturation it is where a
	// request's latency actually goes.
	_, qsp := span.Start(ctx, "queue.wait")
	slotTimer := time.NewTimer(s.queueTimeout)
	defer slotTimer.Stop()
	select {
	case s.pool <- struct{}{}:
		qsp.End()
		s.metrics.Gauge("serve.inflight").Set(int64(len(s.pool)))
		return func() {
			<-s.pool
			s.metrics.Gauge("serve.inflight").Set(int64(len(s.pool)))
		}, nil
	case <-ctx.Done():
		qsp.Fail(ctx.Err())
		qsp.End()
		return nil, ctx.Err()
	case <-slotTimer.C:
		qsp.Fail(errQueueTimeout)
		qsp.End()
		return nil, errQueueTimeout
	}
}

// rejectSlot reports a failed slot acquisition: silently for a client
// that already went away, with 503 + Retry-After for saturation. route
// selects which latency distribution the Retry-After hint derives from.
func (s *server) rejectSlot(w http.ResponseWriter, err error, route string) {
	if !errors.Is(err, errQueueTimeout) {
		s.metrics.Add("serve.canceled", 1)
		return
	}
	s.metrics.Add("serve.rejected", 1)
	w.Header().Set("Retry-After", s.retryAfter(route))
	writeErr(w, http.StatusServiceUnavailable, "saturated", "worker pool saturated")
}

// retryMemo caches one route's derived Retry-After value until a
// deadline, so overload — exactly when every shed request would
// recompute it — does not walk the histogram per rejection.
type retryMemo struct {
	val   atomic.Value // string
	until atomic.Int64 // unix nanos
}

// retryAfter tells a shed client how long to back off: the p90 of the
// named route's observed service latency ("detect" → serve.detect,
// "docs" → serve.docs) — the time a pool slot realistically takes to
// free up — rounded up to whole seconds and clamped to [1, 60]. A
// route with no observations yet answers the 1-second floor. The
// derivation is memoized per route for retryTTL; an unknown route
// falls back to the detect distribution.
func (s *server) retryAfter(route string) string {
	if _, ok := s.retry[route]; !ok {
		route = "detect"
	}
	memo := s.retry[route]
	now := time.Now().UnixNano()
	if now < memo.until.Load() {
		if v, ok := memo.val.Load().(string); ok {
			return v
		}
	}
	p90 := s.metrics.Timer("serve." + route).Quantile(0.9)
	secs := int64(math.Ceil(p90.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	v := strconv.FormatInt(secs, 10)
	// Value before deadline: a reader that sees the fresh deadline must
	// find the fresh value.
	memo.val.Store(v)
	memo.until.Store(now + int64(s.retryTTL))
	return v
}

// decode parses a JSON request body within the size limit.
func (s *server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.metrics.Add("serve.bad_requests", 1)
		writeErr(w, http.StatusBadRequest, "bad-request", "bad request body: "+err.Error())
		return false
	}
	return true
}

// postOnly gates a handler to POST.
func postOnly(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeErr(w, http.StatusMethodNotAllowed, "method-not-allowed", "POST only")
		return false
	}
	return true
}

// finish writes the reply unless the client is already gone — then the
// work is counted canceled and nothing is written (the connection is
// dead anyway).
func (s *server) finish(w http.ResponseWriter, r *http.Request, status int, body any, err error) {
	if r.Context().Err() != nil {
		s.metrics.Add("serve.canceled", 1)
		return
	}
	if err != nil {
		s.metrics.Add("serve.errors", 1)
		reason := reasonFor(status)
		var ie *xmlconflict.InternalError
		if errors.As(err, &ie) {
			// A panic contained inside the engine (batch worker, cache
			// leader) surfaces as a typed InternalError: it is this
			// server's defect, not the client's.
			status, reason = http.StatusInternalServerError, "panic"
		}
		writeErr(w, status, reason, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if !postOnly(w, r) {
		return
	}
	s.metrics.Add("serve.requests", 1)
	var req detectRequest
	if !s.decode(w, r, &req) {
		return
	}
	if ferr := faultinject.Fire("serve.detect"); ferr != nil {
		s.finish(w, r, http.StatusInternalServerError, nil, ferr)
		return
	}

	// Acquire a worker-pool slot; bounded waiting keeps overload
	// failures fast and explicit instead of queueing unboundedly.
	release, err := s.acquireSlot(r.Context())
	if err != nil {
		s.rejectSlot(w, err, "detect")
		return
	}
	defer release()

	begin := time.Now()
	resp, status, err := s.detect(r.Context(), req)
	s.metrics.Timer("serve.detect").ObserveTraced(time.Since(begin), traceID(r))
	if err == nil {
		flagDegraded(r, resp.Complete)
		if resp.Conflict {
			s.metrics.Add("serve.conflicts", 1)
		}
	}
	s.finish(w, r, status, resp, err)
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !postOnly(w, r) {
		return
	}
	s.metrics.Add("serve.requests", 1)
	var req batchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Pairs) == 0 {
		writeErr(w, http.StatusBadRequest, "bad-request", `"pairs" must be non-empty`)
		return
	}
	if ferr := faultinject.Fire("serve.batch"); ferr != nil {
		s.finish(w, r, http.StatusInternalServerError, nil, ferr)
		return
	}
	items := make([]xmlconflict.BatchItem, len(req.Pairs))
	var opts xmlconflict.SearchOptions
	deadlineMs := req.DeadlineMs
	for i, p := range req.Pairs {
		if p.Schema != "" || p.Tree != "" || p.Workers != 0 {
			writeErr(w, http.StatusBadRequest, "bad-request",
				fmt.Sprintf("pair %d: schema/tree/workers are not supported in batches", i))
			return
		}
		item, bounds, err := s.parsePair(p)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad-request", fmt.Sprintf("pair %d: %v", i, err))
			return
		}
		items[i] = item
		// One bound set governs the whole batch: the loosest requested,
		// so no pair searches shallower than it asked for.
		if bounds.MaxNodes > opts.MaxNodes {
			opts.MaxNodes = bounds.MaxNodes
		}
		if bounds.MaxCandidates > opts.MaxCandidates {
			opts.MaxCandidates = bounds.MaxCandidates
		}
		if p.DeadlineMs > deadlineMs {
			deadlineMs = p.DeadlineMs
		}
	}

	// One slot covers the whole batch; the fan-out below is what uses
	// the pool's parallelism.
	release, err := s.acquireSlot(r.Context())
	if err != nil {
		s.rejectSlot(w, err, "detect")
		return
	}
	defer release()

	opts = opts.WithStats(s.metrics).WithContext(r.Context())
	if deadlineMs > 0 {
		opts = opts.WithTimeout(time.Duration(deadlineMs) * time.Millisecond)
	}
	begin := time.Now()
	results, err := xmlconflict.DetectBatchResults(items, opts, cap(s.pool), s.cache)
	s.metrics.Timer("serve.detect").ObserveTraced(time.Since(begin), traceID(r))
	if err != nil {
		// Batch-wide failure (the request context died); per-pair
		// failures land in their own slots below instead.
		s.finish(w, r, http.StatusUnprocessableEntity, nil, err)
		return
	}
	resp := batchResponse{Results: make([]detectResponse, len(results)), ElapsedUs: time.Since(begin).Microseconds()}
	for i, res := range results {
		if res.Err != nil {
			// One poisoned pair fails alone: its slot carries the error
			// while its batch-mates answer normally.
			s.metrics.Add("serve.errors", 1)
			reason := "unprocessable"
			var ie *xmlconflict.InternalError
			if errors.As(res.Err, &ie) {
				reason = "panic"
			}
			resp.Results[i] = detectResponse{
				Semantics: items[i].Sem.String(),
				Reason:    reason,
				Error:     res.Err.Error(),
			}
			continue
		}
		resp.Results[i] = verdictResponse(res.Verdict, items[i].Sem)
		flagDegraded(r, res.Verdict.Complete)
		if res.Verdict.Conflict {
			s.metrics.Add("serve.conflicts", 1)
		}
	}
	s.finish(w, r, 0, resp, nil)
}

func (s *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if !postOnly(w, r) {
		return
	}
	s.metrics.Add("serve.requests", 1)
	var req analyzeRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Program == "" {
		writeErr(w, http.StatusBadRequest, "bad-request", `need "program"`)
		return
	}
	if ferr := faultinject.Fire("serve.analyze"); ferr != nil {
		s.finish(w, r, http.StatusInternalServerError, nil, ferr)
		return
	}
	sem, err := parseSemantics(req.Semantics)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad-request", err.Error())
		return
	}
	prog, err := xmlconflict.ParseProgram(req.Program)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad-request", "program: "+err.Error())
		return
	}

	release, err := s.acquireSlot(r.Context())
	if err != nil {
		s.rejectSlot(w, err, "detect")
		return
	}
	defer release()

	workers := req.Workers
	if workers <= 0 {
		workers = cap(s.pool)
	}
	search := xmlconflict.SearchOptions{
		MaxNodes:      req.MaxNodes,
		MaxCandidates: req.MaxCandidates,
	}.WithStats(s.metrics).WithContext(r.Context())
	if req.DeadlineMs > 0 {
		search = search.WithTimeout(time.Duration(req.DeadlineMs) * time.Millisecond)
	}
	aopts := xmlconflict.AnalyzeOptions{
		Sem:     sem,
		Search:  search,
		Workers: workers,
		Cache:   s.cache,
	}
	begin := time.Now()
	a, err := xmlconflict.AnalyzeProgram(prog, aopts)
	s.metrics.Timer("serve.detect").ObserveTraced(time.Since(begin), traceID(r))
	if err != nil {
		s.finish(w, r, http.StatusUnprocessableEntity, nil, err)
		return
	}
	resp := analyzeResponse{
		Statements: make([]string, len(prog.Stmts)),
		Schedule:   a.ParallelSchedule().Stages,
		ElapsedUs:  time.Since(begin).Microseconds(),
	}
	for i, st := range prog.Stmts {
		resp.Statements[i] = st.Src
	}
	for i := range a.Dep {
		for j := i + 1; j < len(a.Dep); j++ {
			if a.Dep[i][j] {
				resp.Dependences = append(resp.Dependences, analyzeDependence{I: i, J: j, Reason: a.Reason[i][j]})
			}
		}
	}
	resp.HoistableReads = a.HoistableReads()
	resp.RedundantReads = a.RedundantReads()
	s.finish(w, r, 0, resp, nil)
}

// parseSemantics maps the wire name to a Semantics.
func parseSemantics(name string) (xmlconflict.Semantics, error) {
	switch name {
	case "", "node":
		return xmlconflict.NodeSemantics, nil
	case "tree":
		return xmlconflict.TreeSemantics, nil
	case "value":
		return xmlconflict.ValueSemantics, nil
	}
	return 0, fmt.Errorf("unknown semantics %q", name)
}

// parsePair parses the read/update/semantics core of a detect request,
// plus its requested search bounds.
func (s *server) parsePair(req detectRequest) (xmlconflict.BatchItem, xmlconflict.SearchOptions, error) {
	var none xmlconflict.BatchItem
	if req.Read == "" || (req.Insert == "") == (req.Delete == "") {
		return none, xmlconflict.SearchOptions{},
			errors.New(`need "read" and exactly one of "insert"/"delete"`)
	}
	sem, err := parseSemantics(req.Semantics)
	if err != nil {
		return none, xmlconflict.SearchOptions{}, err
	}
	rp, err := xmlconflict.ParseXPath(req.Read)
	if err != nil {
		return none, xmlconflict.SearchOptions{}, fmt.Errorf("read: %w", err)
	}
	var upd xmlconflict.Update
	if req.Insert != "" {
		ip, err := xmlconflict.ParseXPath(req.Insert)
		if err != nil {
			return none, xmlconflict.SearchOptions{}, fmt.Errorf("insert: %w", err)
		}
		xs := req.X
		if xs == "" {
			xs = "<new/>"
		}
		x, err := xmlconflict.ParseXMLString(xs)
		if err != nil {
			return none, xmlconflict.SearchOptions{}, fmt.Errorf("x: %w", err)
		}
		upd = xmlconflict.Insert{P: ip, X: x}
	} else {
		dp, err := xmlconflict.ParseXPath(req.Delete)
		if err != nil {
			return none, xmlconflict.SearchOptions{}, fmt.Errorf("delete: %w", err)
		}
		upd = xmlconflict.Delete{P: dp}
	}
	opts := xmlconflict.SearchOptions{MaxNodes: req.MaxNodes, MaxCandidates: req.MaxCandidates}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 8
	}
	if opts.MaxCandidates <= 0 {
		opts.MaxCandidates = 100_000
	}
	return xmlconflict.BatchItem{R: xmlconflict.Read{P: rp}, U: upd, Sem: sem}, opts, nil
}

// verdictResponse renders a verdict on the wire.
func verdictResponse(v xmlconflict.Verdict, sem xmlconflict.Semantics) detectResponse {
	resp := detectResponse{
		Conflict:   v.Conflict,
		Method:     v.Method,
		Complete:   v.Complete,
		Semantics:  sem.String(),
		Reason:     v.Reason,
		Detail:     v.Detail,
		Edge:       v.Edge,
		Word:       v.Word,
		Candidates: v.Candidates,
	}
	if v.Witness != nil {
		resp.Witness = v.Witness.XML()
	}
	return resp
}

// detect parses and runs one request against the facade, canceled by
// ctx. Returned errors carry the HTTP status to report (400 for request
// defects).
func (s *server) detect(ctx context.Context, req detectRequest) (detectResponse, int, error) {
	item, opts, err := s.parsePair(req)
	if err != nil {
		return detectResponse{}, http.StatusBadRequest, err
	}
	read, upd, sem := item.R, item.U, item.Sem

	begin := time.Now()

	// With a concrete document the request is a Lemma 1 witness check on
	// that tree rather than an existential search over all trees.
	if req.Tree != "" {
		doc, err := xmlconflict.ParseXMLString(req.Tree)
		if err != nil {
			return detectResponse{}, http.StatusBadRequest, fmt.Errorf("tree: %w", err)
		}
		ok, err := xmlconflict.IsConflictWitness(sem, read, upd, doc)
		if err != nil {
			return detectResponse{}, http.StatusUnprocessableEntity, err
		}
		resp := detectResponse{
			Conflict:  ok,
			Method:    "witness-check",
			Complete:  true,
			Semantics: sem.String(),
			Detail:    "checked the supplied document only",
			ElapsedUs: time.Since(begin).Microseconds(),
		}
		if ok {
			resp.Witness = doc.XML()
		}
		return resp, 0, nil
	}

	opts = opts.WithStats(s.metrics).WithContext(ctx)
	if req.DeadlineMs > 0 {
		// A lapsed deadline degrades the search, it does not fail it:
		// the verdict comes back 200 with complete:false and
		// reason:"deadline".
		opts = opts.WithTimeout(time.Duration(req.DeadlineMs) * time.Millisecond)
	}

	var v xmlconflict.Verdict
	if req.Schema != "" {
		sch, err := xmlconflict.ParseSchema(req.Schema)
		if err != nil {
			return detectResponse{}, http.StatusBadRequest, fmt.Errorf("schema: %w", err)
		}
		sch.Instrument(s.metrics)
		v, err = xmlconflict.DetectUnderSchema(read, upd, sem, sch, opts)
		if err != nil {
			return detectResponse{}, http.StatusUnprocessableEntity, err
		}
	} else if req.Workers > 0 {
		v, err = xmlconflict.DetectParallel(read, upd, sem, opts, req.Workers)
		if err != nil {
			return detectResponse{}, http.StatusUnprocessableEntity, err
		}
	} else {
		// The plain form rides the process-lifetime verdict cache:
		// repeated pairs are decided once for the server's life.
		v, err = s.cache.Detect(read, upd, sem, opts)
		if err != nil {
			return detectResponse{}, http.StatusUnprocessableEntity, err
		}
	}
	resp := verdictResponse(v, sem)
	resp.ElapsedUs = time.Since(begin).Microseconds()
	return resp, 0, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("xserve", flag.ContinueOnError)
	listen := fs.String("listen", ":8344", "address to serve on")
	pool := fs.Int("pool", 0, "worker pool size (0 = GOMAXPROCS)")
	queueTimeout := fs.Duration("queue-timeout", 2*time.Second, "how long a request waits for a pool slot before 503")
	maxBody := fs.Int64("max-body", 1<<20, "request body size limit in bytes")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "graceful drain budget on SIGINT/SIGTERM")
	t := defaultTimeouts()
	fs.DurationVar(&t.readHeader, "read-header-timeout", t.readHeader, "time limit for reading a request's headers")
	fs.DurationVar(&t.read, "read-timeout", t.read, "time limit for reading a whole request")
	fs.DurationVar(&t.write, "write-timeout", t.write, "time limit for writing a response (covers the detection)")
	fs.DurationVar(&t.idle, "idle-timeout", t.idle, "how long a keep-alive connection may sit idle")
	faults := fs.String("faults", "", "fault-injection spec site=kind[:delay][@after][xN][;...] for chaos testing")
	traceDir := fs.String("trace-dir", "", "dump captured request traces (slow/error/degraded/conflict) as JSON into this directory")
	traceSlow := fs.Duration("trace-slow", 0, "latency above which a request trace is always kept (0 = recorder default)")
	storeDir := fs.String("store-dir", "", "durable document store directory (empty = /v1/docs disabled)")
	storeFsync := fs.String("store-fsync", "always", "store fsync policy: always, group, or never")
	storeFsyncInterval := fs.Duration("store-fsync-interval", 5*time.Millisecond, "group-commit fsync cadence (with -store-fsync=group)")
	storeSnapshotEvery := fs.Int("store-snapshot-every", 1024, "auto-snapshot (and truncate the WAL) after this many records; 0 = manual only")
	shards := fs.Int("shards", 1, "partition the document space across this many store shards (each with its own WAL, snapshots, and recovery)")
	tenantInflight := fs.Int("tenant-inflight", 0, "max in-flight /v1/docs operations per tenant before 429 (0 = unlimited)")
	addrFile := fs.String("addr-file", "", "write the bound listen address to this file once serving (harness hook: lets xload/CI find a :0 port)")
	replNode := fs.String("repl-node", "", "this node's id in a replicated cluster (requires -store-dir and -repl-peers)")
	replPeers := fs.String("repl-peers", "", "full cluster membership as id=url,id=url (first peer is the initial primary)")
	replAck := fs.String("repl-ack", "quorum", "replication level a write waits for: local, quorum, or all")
	replHeartbeat := fs.Duration("repl-heartbeat", 100*time.Millisecond, "primary heartbeat cadence / backup detection tick")
	replFailoverAfter := fs.Duration("repl-failover-after", 0, "primary silence a backup tolerates before standing for promotion (0 = 10 heartbeats)")
	replStaleness := fs.Duration("repl-staleness", 5*time.Second, "staleness bound past which a backup refuses reads")
	replTentative := fs.Bool("repl-tentative", false, "let a disconnected backup queue optimistic writes for detector-arbitrated merge")
	replLearner := fs.Bool("repl-learner", false, "boot this node as a non-voting learner joining an existing cluster (pair with POST /v1/repl/join on the primary)")
	replAdmin := fs.Bool("repl-admin", false, "mount cluster admin endpoints: POST /v1/repl/join, /v1/repl/leave, /v1/repl/faults")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *faults != "" {
		if err := faultinject.ArmSpec(*faults); err != nil {
			fmt.Fprintf(os.Stderr, "xserve: -faults: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "xserve: fault injection armed: %s\n", *faults)
	}

	s := newServer(*pool, *queueTimeout, *maxBody)
	if *traceDir != "" || *traceSlow > 0 {
		s.recorder = span.NewFlightRecorder(span.RecorderOptions{Dir: *traceDir, SlowThreshold: *traceSlow})
		if *traceDir != "" {
			fmt.Fprintf(os.Stderr, "xserve: capturing request traces into %s\n", *traceDir)
		}
	}
	if *replNode != "" && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "xserve: -repl-node requires -store-dir")
		return 2
	}
	if *storeDir != "" {
		policy, err := parseFsyncPolicy(*storeFsync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xserve: -store-fsync: %v\n", err)
			return 2
		}
		shardOpts := shard.Options{
			Shards: *shards,
			Store: store.Options{
				Fsync:         policy,
				FsyncInterval: *storeFsyncInterval,
				SnapshotEvery: *storeSnapshotEvery,
				Metrics:       s.metrics, // store.* counters ride /metrics, labeled per shard
			},
		}
		if *replNode != "" {
			peers, err := parsePeers(*replPeers)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xserve: -repl-peers: %v\n", err)
				return 2
			}
			ack, err := replica.ParseAckLevel(*replAck)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xserve: -repl-ack: %v\n", err)
				return 2
			}
			node, err := replica.Open(*storeDir, shardOpts, replica.Options{
				NodeID:         *replNode,
				Peers:          peers,
				Ack:            ack,
				HeartbeatEvery: *replHeartbeat,
				FailoverAfter:  *replFailoverAfter,
				StalenessBound: *replStaleness,
				Tentative:      *replTentative,
				Learner:        *replLearner,
				Metrics:        s.metrics,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "xserve: -repl-node: %v\n", err)
				return 2
			}
			defer node.Close()
			s.node = node
			s.store = node.Router()
			s.replAdmin = *replAdmin
			s.identity["repl_node"] = *replNode
			s.identity["repl_peers"] = strconv.Itoa(len(peers))
			s.identity["repl_ack"] = ack.String()
			s.identity["repl_tentative"] = strconv.FormatBool(*replTentative)
			fmt.Fprintf(os.Stderr, "xserve: replica %s of %d peers (%s, ack %s, epoch %d)\n",
				*replNode, len(peers), node.Role(), ack, node.Epoch())
		} else {
			rt, err := shard.Open(*storeDir, shardOpts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xserve: -store-dir: %v\n", err)
				return 2
			}
			defer rt.Close()
			s.store = rt
		}
		s.tenants = shard.NewTenantLimiter(*tenantInflight, s.metrics)
		s.identity["store"] = "on"
		s.identity["store_fsync"] = policy.String()
		s.identity["store_fsync_interval"] = storeFsyncInterval.String()
		s.identity["store_snapshot_every"] = strconv.Itoa(*storeSnapshotEvery)
		s.identity["store_shards"] = strconv.Itoa(s.store.Shards())
		s.identity["tenant_inflight"] = strconv.Itoa(*tenantInflight)
		fmt.Fprintf(os.Stderr, "xserve: document store at %s (%d shards, fsync %s, %d docs)\n",
			*storeDir, s.store.Shards(), policy, len(s.store.Docs()))
	}
	if !s.metrics.Publish("xmlconflict") {
		fmt.Fprintln(os.Stderr, "xserve: expvar name xmlconflict already taken; /debug/vars serves the earlier registry")
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xserve: %v\n", err)
		return 2
	}
	if *addrFile != "" {
		// The hook a harness polls: once this file exists, the port is
		// bound and the address inside it is connectable.
		if werr := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "xserve: -addr-file: %v\n", werr)
			return 2
		}
	}
	srv := t.server(s.routes())

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "xserve: serving on http://%s (pool %d)\n", ln.Addr(), cap(s.pool))

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "xserve: %v\n", err)
			return 2
		}
		return 0
	case <-ctx.Done():
	}

	// Drain: stop advertising readiness, then let in-flight detections
	// finish inside the shutdown budget.
	s.ready.Store(false)
	fmt.Fprintln(os.Stderr, "xserve: draining")
	sctx, scancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "xserve: forced shutdown: %v\n", err)
		srv.Close()
		return 1
	}
	fmt.Fprintln(os.Stderr, "xserve: drained")
	return 0
}
