// Command xserve is the long-running conflict-detection daemon: the
// engine of "Conflicting XML Updates" (EDBT 2006) behind an HTTP API,
// with the full live observability surface of internal/telemetry.
//
// Usage:
//
//	xserve [-listen :8344] [-pool N] [-queue-timeout 2s] [-max-body 1048576]
//
// API:
//
//	POST /v1/detect
//	    {"read": "//A[B]", "insert": "/*/B", "x": "<C/>",
//	     "semantics": "node", "max_nodes": 8, "max_candidates": 100000,
//	     "schema": "...", "tree": "<a>...</a>", "workers": 0}
//	    -> {"conflict": true, "method": "search", "complete": true,
//	        "witness": "<a>...</a>", "candidates": 712, "elapsed_us": 3100}
//
// Exactly one of "insert"/"delete" must be given. With "tree" the
// request is a witness check on that document (Lemma 1, polynomial);
// with "schema" the search is restricted to schema-valid witnesses;
// with "workers" > 0 the NP-case search fans out over that many
// goroutines. All other fields bound the witness search exactly like
// xconflict's flags.
//
// Observability (same mux):
//
//	GET /metrics        Prometheus text exposition: serve_detect_seconds
//	                    p50/p90/p99, request/error/conflict counters, and
//	                    every engine counter (candidates, cache traffic, ...)
//	GET /debug/vars     expvar JSON snapshot
//	GET /debug/pprof/*  live CPU/heap/trace profiling
//	GET /healthz        liveness
//	GET /readyz         readiness (503 while draining)
//
// Detection work runs on a bounded worker pool (-pool, default
// GOMAXPROCS): excess requests wait up to -queue-timeout for a slot and
// are then rejected with 503 + Retry-After, keeping tail latency bounded
// under overload instead of collapsing. SIGINT/SIGTERM drain gracefully:
// readiness flips first, in-flight detections finish.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"xmlconflict"
	"xmlconflict/internal/telemetry"
	"xmlconflict/internal/telemetry/obshttp"
)

// detectRequest is the POST /v1/detect body, stable for tooling.
type detectRequest struct {
	Read          string `json:"read"`
	Insert        string `json:"insert,omitempty"`
	X             string `json:"x,omitempty"`
	Delete        string `json:"delete,omitempty"`
	Semantics     string `json:"semantics,omitempty"`
	MaxNodes      int    `json:"max_nodes,omitempty"`
	MaxCandidates int    `json:"max_candidates,omitempty"`
	Schema        string `json:"schema,omitempty"`
	Tree          string `json:"tree,omitempty"`
	Workers       int    `json:"workers,omitempty"`
}

// detectResponse is the POST /v1/detect reply, stable for tooling.
type detectResponse struct {
	Conflict   bool     `json:"conflict"`
	Method     string   `json:"method"`
	Complete   bool     `json:"complete"`
	Semantics  string   `json:"semantics"`
	Detail     string   `json:"detail,omitempty"`
	Edge       int      `json:"edge,omitempty"`
	Word       []string `json:"word,omitempty"`
	Witness    string   `json:"witness,omitempty"`
	Candidates int      `json:"candidates,omitempty"`
	ElapsedUs  int64    `json:"elapsed_us"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// server carries the daemon's shared state: the metrics registry every
// request records into, the bounded worker pool, and the readiness bit.
type server struct {
	metrics      *telemetry.Metrics
	pool         chan struct{}
	queueTimeout time.Duration
	maxBody      int64
	ready        atomic.Bool
}

func newServer(pool int, queueTimeout time.Duration, maxBody int64) *server {
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	if queueTimeout <= 0 {
		queueTimeout = 2 * time.Second
	}
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	s := &server{
		metrics:      telemetry.New(),
		pool:         make(chan struct{}, pool),
		queueTimeout: queueTimeout,
		maxBody:      maxBody,
	}
	s.ready.Store(true)
	return s
}

// routes mounts the API and the observability surface on one mux.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/detect", s.handleDetect)
	obshttp.Mount(mux, obshttp.Options{Metrics: s.metrics, Ready: s.ready.Load})
	return mux
}

func (s *server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	s.metrics.Add("serve.requests", 1)

	var req detectRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.Add("serve.bad_requests", 1)
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
		return
	}

	// Acquire a worker-pool slot; bounded waiting keeps overload
	// failures fast and explicit instead of queueing unboundedly.
	slotTimer := time.NewTimer(s.queueTimeout)
	defer slotTimer.Stop()
	select {
	case s.pool <- struct{}{}:
		defer func() { <-s.pool }()
	case <-r.Context().Done():
		s.metrics.Add("serve.canceled", 1)
		return
	case <-slotTimer.C:
		s.metrics.Add("serve.rejected", 1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{"worker pool saturated"})
		return
	}

	s.metrics.Gauge("serve.inflight").Set(int64(len(s.pool)))
	stop := s.metrics.Timer("serve.detect").Start()
	resp, status, err := s.detect(req)
	stop()
	if err != nil {
		s.metrics.Add("serve.errors", 1)
		writeJSON(w, status, errorResponse{err.Error()})
		return
	}
	if resp.Conflict {
		s.metrics.Add("serve.conflicts", 1)
	}
	writeJSON(w, http.StatusOK, resp)
}

// detect parses and runs one request against the facade. Returned
// errors carry the HTTP status to report (400 for request defects).
func (s *server) detect(req detectRequest) (detectResponse, int, error) {
	if req.Read == "" || (req.Insert == "") == (req.Delete == "") {
		return detectResponse{}, http.StatusBadRequest,
			errors.New(`need "read" and exactly one of "insert"/"delete"`)
	}
	var sem xmlconflict.Semantics
	switch req.Semantics {
	case "", "node":
		sem = xmlconflict.NodeSemantics
	case "tree":
		sem = xmlconflict.TreeSemantics
	case "value":
		sem = xmlconflict.ValueSemantics
	default:
		return detectResponse{}, http.StatusBadRequest,
			fmt.Errorf("unknown semantics %q", req.Semantics)
	}
	rp, err := xmlconflict.ParseXPath(req.Read)
	if err != nil {
		return detectResponse{}, http.StatusBadRequest, fmt.Errorf("read: %w", err)
	}
	read := xmlconflict.Read{P: rp}
	var upd xmlconflict.Update
	if req.Insert != "" {
		ip, err := xmlconflict.ParseXPath(req.Insert)
		if err != nil {
			return detectResponse{}, http.StatusBadRequest, fmt.Errorf("insert: %w", err)
		}
		xs := req.X
		if xs == "" {
			xs = "<new/>"
		}
		x, err := xmlconflict.ParseXMLString(xs)
		if err != nil {
			return detectResponse{}, http.StatusBadRequest, fmt.Errorf("x: %w", err)
		}
		upd = xmlconflict.Insert{P: ip, X: x}
	} else {
		dp, err := xmlconflict.ParseXPath(req.Delete)
		if err != nil {
			return detectResponse{}, http.StatusBadRequest, fmt.Errorf("delete: %w", err)
		}
		upd = xmlconflict.Delete{P: dp}
	}

	begin := time.Now()

	// With a concrete document the request is a Lemma 1 witness check on
	// that tree rather than an existential search over all trees.
	if req.Tree != "" {
		doc, err := xmlconflict.ParseXMLString(req.Tree)
		if err != nil {
			return detectResponse{}, http.StatusBadRequest, fmt.Errorf("tree: %w", err)
		}
		ok, err := xmlconflict.IsConflictWitness(sem, read, upd, doc)
		if err != nil {
			return detectResponse{}, http.StatusUnprocessableEntity, err
		}
		resp := detectResponse{
			Conflict:  ok,
			Method:    "witness-check",
			Complete:  true,
			Semantics: sem.String(),
			Detail:    "checked the supplied document only",
			ElapsedUs: time.Since(begin).Microseconds(),
		}
		if ok {
			resp.Witness = doc.XML()
		}
		return resp, 0, nil
	}

	opts := xmlconflict.SearchOptions{
		MaxNodes:      req.MaxNodes,
		MaxCandidates: req.MaxCandidates,
	}.WithStats(s.metrics)
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 8
	}
	if opts.MaxCandidates <= 0 {
		opts.MaxCandidates = 100_000
	}

	var v xmlconflict.Verdict
	if req.Schema != "" {
		sch, err := xmlconflict.ParseSchema(req.Schema)
		if err != nil {
			return detectResponse{}, http.StatusBadRequest, fmt.Errorf("schema: %w", err)
		}
		sch.Instrument(s.metrics)
		v, err = xmlconflict.DetectUnderSchema(read, upd, sem, sch, opts)
		if err != nil {
			return detectResponse{}, http.StatusUnprocessableEntity, err
		}
	} else if req.Workers > 0 {
		v, err = xmlconflict.DetectParallel(read, upd, sem, opts, req.Workers)
		if err != nil {
			return detectResponse{}, http.StatusUnprocessableEntity, err
		}
	} else {
		v, err = xmlconflict.Detect(read, upd, sem, opts)
		if err != nil {
			return detectResponse{}, http.StatusUnprocessableEntity, err
		}
	}
	resp := detectResponse{
		Conflict:   v.Conflict,
		Method:     v.Method,
		Complete:   v.Complete,
		Semantics:  sem.String(),
		Detail:     v.Detail,
		Edge:       v.Edge,
		Word:       v.Word,
		Candidates: v.Candidates,
		ElapsedUs:  time.Since(begin).Microseconds(),
	}
	if v.Witness != nil {
		resp.Witness = v.Witness.XML()
	}
	return resp, 0, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("xserve", flag.ContinueOnError)
	listen := fs.String("listen", ":8344", "address to serve on")
	pool := fs.Int("pool", 0, "worker pool size (0 = GOMAXPROCS)")
	queueTimeout := fs.Duration("queue-timeout", 2*time.Second, "how long a request waits for a pool slot before 503")
	maxBody := fs.Int64("max-body", 1<<20, "request body size limit in bytes")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "graceful drain budget on SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	s := newServer(*pool, *queueTimeout, *maxBody)
	if !s.metrics.Publish("xmlconflict") {
		fmt.Fprintln(os.Stderr, "xserve: expvar name xmlconflict already taken; /debug/vars serves the earlier registry")
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xserve: %v\n", err)
		return 2
	}
	srv := &http.Server{Handler: s.routes()}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "xserve: serving on http://%s (pool %d)\n", ln.Addr(), cap(s.pool))

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "xserve: %v\n", err)
			return 2
		}
		return 0
	case <-ctx.Done():
	}

	// Drain: stop advertising readiness, then let in-flight detections
	// finish inside the shutdown budget.
	s.ready.Store(false)
	fmt.Fprintln(os.Stderr, "xserve: draining")
	sctx, scancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "xserve: forced shutdown: %v\n", err)
		srv.Close()
		return 1
	}
	fmt.Fprintln(os.Stderr, "xserve: drained")
	return 0
}
