// Command xconflict decides whether two XPath-driven operations on XML
// documents conflict, per "Conflicting XML Updates" (EDBT 2006).
//
// Usage:
//
//	xconflict -read <xpath> -insert <xpath> -x <xml> [-sem node|tree|value]
//	xconflict -read <xpath> -delete <xpath>          [-sem node|tree|value]
//
// Flags:
//
//	-read    the read operation's XPath expression (required)
//	-insert  the insert operation's XPath expression
//	-x       the XML fragment the insert adds (default <new/>)
//	-delete  the delete operation's XPath expression
//	-sem     conflict semantics: node (default), tree, or value
//	-shrink  minimize the witness via marking/reparenting (Lemma 11)
//	-max     witness size bound for the search fallback (branching reads)
//	-j       NP-case search workers (0 = GOMAXPROCS, 1 = sequential);
//	         verdicts are identical at any setting
//	-schema  restrict witnesses to documents valid under a schema file
//	-max-input  largest -schema file accepted in bytes (default 16 MiB)
//	-quiet   print only "conflict" or "no conflict"
//	-trace   stream JSON-lines decision-trace events to stderr
//	-stats   print a telemetry counter snapshot to stderr afterwards
//	-progress  report live search progress on stderr
//	-listen  serve /metrics, /debug/pprof, and health probes on this
//	         address while the detection runs (live profiling)
//
// Exactly one of -insert/-delete must be given. On a conflict the witness
// document is printed; the exit status is 0 for "no conflict", 1 for
// "conflict", and 2 for usage or internal errors, so the tool composes
// with shell scripts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"xmlconflict"
	"xmlconflict/internal/cliio"
)

// jsonVerdict is the -json output shape, stable for tooling.
type jsonVerdict struct {
	Conflict   bool     `json:"conflict"`
	Method     string   `json:"method"`
	Complete   bool     `json:"complete"`
	Semantics  string   `json:"semantics"`
	Reason     string   `json:"reason,omitempty"`
	Detail     string   `json:"detail,omitempty"`
	Edge       int      `json:"edge,omitempty"`
	Word       []string `json:"word,omitempty"`
	Witness    string   `json:"witness,omitempty"`
	Candidates int      `json:"candidates,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("xconflict", flag.ContinueOnError)
	readExpr := fs.String("read", "", "read operation XPath (required)")
	insExpr := fs.String("insert", "", "insert operation XPath")
	insXML := fs.String("x", "<new/>", "XML fragment inserted by -insert")
	delExpr := fs.String("delete", "", "delete operation XPath")
	semName := fs.String("sem", "node", "conflict semantics: node, tree, or value")
	shrink := fs.Bool("shrink", false, "minimize the witness (node semantics)")
	maxNodes := fs.Int("max", 8, "witness size bound for the search fallback")
	jobs := fs.Int("j", 1, "NP-case search workers (0 = GOMAXPROCS); the verdict is identical at any setting")
	deadline := fs.Duration("deadline", 0, "wall-clock budget for the search; exhaustion degrades the verdict to incomplete (reason \"deadline\") instead of failing")
	quiet := fs.Bool("quiet", false, "print only the verdict")
	jsonOut := fs.Bool("json", false, "emit the verdict as JSON")
	schemaPath := fs.String("schema", "", "restrict witnesses to documents valid under this schema file")
	trace := fs.Bool("trace", false, "stream JSON-lines decision-trace events to stderr")
	spanTree := fs.Bool("span", false, "print the request's span tree (method choice, search budget spend, durations) to stderr afterwards")
	stats := fs.Bool("stats", false, "print a telemetry counter snapshot to stderr afterwards")
	progress := fs.Bool("progress", false, "report live search progress on stderr")
	listen := fs.String("listen", "", "serve /metrics, /debug/pprof, and health probes on this address while running")
	maxInput := fs.Int64("max-input", cliio.DefaultMaxInput, "largest -schema file accepted, in bytes")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *readExpr == "" || (*insExpr == "") == (*delExpr == "") {
		fmt.Fprintln(os.Stderr, "xconflict: need -read and exactly one of -insert/-delete")
		fs.Usage()
		return 2
	}
	var sem xmlconflict.Semantics
	switch *semName {
	case "node":
		sem = xmlconflict.NodeSemantics
	case "tree":
		sem = xmlconflict.TreeSemantics
	case "value":
		sem = xmlconflict.ValueSemantics
	default:
		fmt.Fprintf(os.Stderr, "xconflict: unknown semantics %q\n", *semName)
		return 2
	}

	rp, err := xmlconflict.ParseXPath(*readExpr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xconflict: -read: %v\n", err)
		return 2
	}
	read := xmlconflict.Read{P: rp}

	var upd xmlconflict.Update
	if *insExpr != "" {
		ip, err := xmlconflict.ParseXPath(*insExpr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xconflict: -insert: %v\n", err)
			return 2
		}
		x, err := xmlconflict.ParseXMLString(*insXML)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xconflict: -x: %v\n", err)
			return 2
		}
		upd = xmlconflict.Insert{P: ip, X: x}
	} else {
		dp, err := xmlconflict.ParseXPath(*delExpr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xconflict: -delete: %v\n", err)
			return 2
		}
		upd = xmlconflict.Delete{P: dp}
	}

	opts := xmlconflict.SearchOptions{MaxNodes: *maxNodes}
	if *deadline > 0 {
		opts = opts.WithTimeout(*deadline)
	}
	var st *xmlconflict.Stats
	if *stats || *listen != "" {
		st = xmlconflict.NewStats()
		opts = opts.WithStats(st)
	}
	if *listen != "" {
		obs, addr, err := xmlconflict.ServeObservability(*listen, st)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xconflict: %v\n", err)
			return 2
		}
		defer obs.Close()
		fmt.Fprintf(os.Stderr, "xconflict: observability on http://%s\n", addr)
	}
	if *trace {
		opts = opts.WithTracer(xmlconflict.NewJSONTracer(os.Stderr))
	}
	if *progress {
		opts = opts.WithProgress(xmlconflict.NewProgressWriter(os.Stderr, 0))
	}
	var spanTr *xmlconflict.SpanTrace
	if *spanTree {
		ctx, tr := xmlconflict.StartTrace(context.Background(), "xconflict")
		spanTr = tr
		opts = opts.WithContext(ctx)
		defer func() {
			spanTr.Finish()
			spanTr.View().WriteTree(os.Stderr)
		}()
	}

	var v xmlconflict.Verdict
	if *schemaPath != "" {
		src, err := cliio.ReadFile(*schemaPath, *maxInput)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xconflict: %v\n", err)
			return 2
		}
		s, err := xmlconflict.ParseSchema(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "xconflict: %v\n", err)
			return 2
		}
		if st != nil {
			s.Instrument(st)
		}
		v, err = xmlconflict.DetectUnderSchema(read, upd, sem, s, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xconflict: %v\n", err)
			return 2
		}
	} else if *jobs != 1 {
		var err error
		v, err = xmlconflict.DetectParallel(read, upd, sem, opts, *jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xconflict: %v\n", err)
			return 2
		}
	} else {
		var err error
		v, err = xmlconflict.Detect(read, upd, sem, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xconflict: %v\n", err)
			return 2
		}
	}
	if st != nil {
		defer fmt.Fprint(os.Stderr, st.Snapshot())
	}
	if *jsonOut {
		out := jsonVerdict{
			Conflict:   v.Conflict,
			Method:     v.Method,
			Complete:   v.Complete,
			Reason:     v.Reason,
			Detail:     v.Detail,
			Semantics:  sem.String(),
			Edge:       v.Edge,
			Word:       v.Word,
			Candidates: v.Candidates,
		}
		if v.Witness != nil {
			out.Witness = v.Witness.XML()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "xconflict: %v\n", err)
			return 2
		}
		if v.Conflict {
			return 1
		}
		return 0
	}
	if *quiet {
		if v.Conflict {
			fmt.Println("conflict")
			return 1
		}
		fmt.Println("no conflict")
		return 0
	}
	fmt.Printf("verdict:  %s\n", v)
	if v.Conflict && v.Witness != nil {
		w := v.Witness
		if *shrink && sem == xmlconflict.NodeSemantics {
			if s, err := xmlconflict.ShrinkWitness(w, read, upd); err == nil {
				w = s
			}
		}
		fmt.Printf("witness:  %s\n", w.XML())
		fmt.Printf("          (%d nodes)\n", w.Size())
	}
	if !v.Complete {
		fmt.Println("note:     the verdict rests on a bounded search that was inconclusive")
		fmt.Println("          (detection here is NP-complete or, under a schema, of open")
		fmt.Println("          complexity) — raise -max for more confidence")
		if v.Reason != "" {
			fmt.Printf("reason:   %s\n", v.Reason)
		}
	}
	if v.Conflict {
		return 1
	}
	return 0
}
