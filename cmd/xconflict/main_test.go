package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"conflict", []string{"-read", "//C", "-insert", "/*/B", "-x", "<C/>"}, 1},
		{"no conflict", []string{"-read", "//D", "-insert", "/*/B", "-x", "<C/>"}, 0},
		{"delete conflict", []string{"-read", "/a/b/c", "-delete", "/a/b"}, 1},
		{"delete no conflict", []string{"-read", "/a", "-delete", "/a/b"}, 0},
		{"tree semantics", []string{"-read", "/a", "-delete", "/a/b", "-sem", "tree"}, 1},
		{"value semantics", []string{"-read", "/a", "-delete", "/a/b", "-sem", "value"}, 1},
		{"quiet conflict", []string{"-quiet", "-read", "//C", "-insert", "/*/B", "-x", "<C/>"}, 1},
		{"shrink", []string{"-shrink", "-read", "//C", "-insert", "/*/B", "-x", "<C/>"}, 1},
		{"missing read", []string{"-insert", "/a", "-x", "<b/>"}, 2},
		{"both ops", []string{"-read", "/a", "-insert", "/a", "-delete", "/a/b"}, 2},
		{"neither op", []string{"-read", "/a"}, 2},
		{"bad read xpath", []string{"-read", "a[", "-delete", "/a/b"}, 2},
		{"bad insert xpath", []string{"-read", "/a", "-insert", "]["}, 2},
		{"bad delete xpath", []string{"-read", "/a", "-delete", "]["}, 2},
		{"bad xml", []string{"-read", "/a", "-insert", "/a", "-x", "<unclosed>"}, 2},
		{"bad semantics", []string{"-read", "/a", "-delete", "/a/b", "-sem", "bogus"}, 2},
		{"delete of root", []string{"-read", "/a", "-delete", "/a"}, 2},
		{"branching read search", []string{"-read", "/a[q]/b", "-insert", "/a", "-x", "<b/>", "-max", "4"}, 1},
		{"missing schema file", []string{"-schema", "/nonexistent", "-read", "/a", "-delete", "/a/b"}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := run(c.args); got != c.want {
				t.Fatalf("run(%v) = %d, want %d", c.args, got, c.want)
			}
		})
	}
}

func TestSchemaFlag(t *testing.T) {
	schema := `
root inventory
inventory: book*
book: title quantity
quantity: low?
title:
low:
`
	path := t.TempDir() + "/inv.xds"
	if err := os.WriteFile(path, []byte(schema), 0o644); err != nil {
		t.Fatal(err)
	}
	// Schema-free this conflicts; under the schema the insert can never
	// fire (quantity is not a child of inventory).
	args := []string{"-read", "//low", "-insert", "/inventory/quantity", "-x", "<low/>"}
	if got := run(args); got != 1 {
		t.Fatalf("schema-free: exit %d, want 1", got)
	}
	if got := run(append([]string{"-schema", path}, args...)); got != 0 {
		t.Fatalf("under schema: exit != 0")
	}
	// A bad schema file is a usage error.
	bad := t.TempDir() + "/bad.xds"
	os.WriteFile(bad, []byte("x: undeclared"), 0o644)
	if got := run(append([]string{"-schema", bad}, args...)); got != 2 {
		t.Fatalf("bad schema: exit != 2")
	}
}

func TestJSONOutput(t *testing.T) {
	// Exit codes carry through JSON mode.
	if got := run([]string{"-json", "-read", "//C", "-insert", "/*/B", "-x", "<C/>"}); got != 1 {
		t.Fatalf("json conflict: exit %d", got)
	}
	if got := run([]string{"-json", "-read", "//D", "-insert", "/*/B", "-x", "<C/>"}); got != 0 {
		t.Fatalf("json no-conflict: exit %d", got)
	}
}

// captureStderr runs fn with os.Stderr redirected to a pipe and returns
// what was written.
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	fn()
	w.Close()
	os.Stderr = old
	return <-done
}

func TestTraceFlag(t *testing.T) {
	// The quickstart pair with -trace must stream valid JSON lines to
	// stderr covering method selection, candidate counts, and the final
	// verdict.
	out := captureStderr(t, func() {
		if got := run([]string{"-trace", "-quiet", "-read", "//C", "-insert", "/*/B", "-x", "<C/>"}); got != 1 {
			t.Errorf("exit %d, want 1", got)
		}
	})
	events := map[string]map[string]any{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line is not JSON: %q: %v", line, err)
		}
		name, _ := ev["event"].(string)
		if name == "" {
			t.Fatalf("trace line without event name: %q", line)
		}
		events[name] = ev
	}
	m, ok := events["detect.method"]
	if !ok || m["method"] != "linear" {
		t.Fatalf("no linear detect.method event: %v", events)
	}
	v, ok := events["detect.verdict"]
	if !ok || v["conflict"] != true {
		t.Fatalf("no conflicting detect.verdict event: %v", events)
	}
	if _, ok := v["candidates"]; !ok {
		t.Fatalf("detect.verdict has no candidate count: %v", v)
	}
}

func TestSpanFlag(t *testing.T) {
	// -span prints the request's span tree to stderr: a trace header
	// with a hex ID, a detect span, and — for a branching read that
	// needs the NP search — a nested search span with its budget spend.
	out := captureStderr(t, func() {
		if got := run([]string{"-span", "-quiet", "-read", "/a[q]/b", "-insert", "/a", "-x", "<b/>", "-max", "4"}); got != 1 {
			t.Errorf("exit %d, want 1", got)
		}
	})
	if !strings.Contains(out, "trace ") || !strings.Contains(out, "xconflict") {
		t.Fatalf("no trace header in span output:\n%s", out)
	}
	if !strings.Contains(out, "detect ") {
		t.Fatalf("no detect span in span output:\n%s", out)
	}
	if !strings.Contains(out, "search ") || !strings.Contains(out, "candidates=") {
		t.Fatalf("no search span with budget spend in span output:\n%s", out)
	}
}

func TestStatsFlag(t *testing.T) {
	out := captureStderr(t, func() {
		if got := run([]string{"-stats", "-quiet", "-read", "//C", "-insert", "/*/B", "-x", "<C/>"}); got != 1 {
			t.Errorf("exit %d, want 1", got)
		}
	})
	for _, want := range []string{"detect.calls", "linear.cut_edges", "automata.products"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-stats output missing %q:\n%s", want, out)
		}
	}
}

func TestMaxInputFlag(t *testing.T) {
	schema := `
root inventory
inventory: book*
book:
`
	path := t.TempDir() + "/inv.xds"
	if err := os.WriteFile(path, []byte(schema), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-read", "//book", "-insert", "/inventory", "-x", "<book/>", "-schema", path}
	// A schema file over -max-input fails cleanly with exit 2.
	if got := run(append([]string{"-max-input", "8"}, args...)); got != 2 {
		t.Fatalf("oversized schema accepted: exit %d", got)
	}
	// The same file under a sufficient cap runs the detection.
	if got := run(append([]string{"-max-input", "4096"}, args...)); got == 2 {
		t.Fatalf("within-cap schema rejected")
	}
}
