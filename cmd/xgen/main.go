// Command xgen emits synthetic workloads for experimenting with the
// library and the other tools: random XML documents, random patterns in
// the paper's XPath fragment, Figure-1-style inventories, and the hard
// containment instance family of the NP-hardness experiments.
//
// Usage:
//
//	xgen [-seed N] doc -size 200 [-fanout 8] [-labels a,b,c] [-pretty]
//	xgen [-seed N] inventory -books 20 [-low 0.3]
//	xgen [-seed N] pattern -size 8 [-branch 0.4] [-wildcard 0.25] [-desc 0.35] [-count 5]
//	xgen [-seed N] hardpair -n 3
//
// Every output is deterministic in -seed.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"xmlconflict/internal/generate"
	"xmlconflict/internal/pattern"
	"xmlconflict/internal/telemetry/obshttp"
	"xmlconflict/internal/xmltree"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("xgen", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed")
	listen := fs.String("listen", "", "serve /metrics, /debug/pprof, and health probes on this address while running")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listen != "" {
		obs, addr, err := obshttp.Serve(*listen, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xgen: %v\n", err)
			return 2
		}
		defer obs.Close()
		fmt.Fprintf(os.Stderr, "xgen: observability on http://%s\n", addr)
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "xgen: need a subcommand: doc, inventory, pattern, hardpair")
		return 2
	}
	rng := rand.New(rand.NewSource(*seed))
	sub := fs.Arg(0)
	rest := fs.Args()[1:]
	switch sub {
	case "doc":
		dfs := flag.NewFlagSet("doc", flag.ContinueOnError)
		size := dfs.Int("size", 50, "number of nodes")
		fanout := dfs.Int("fanout", 8, "maximum children per node (0 = unbounded)")
		labels := dfs.String("labels", "a,b,c,d", "comma-separated label alphabet")
		skew := dfs.Float64("skew", 0.3, "depth bias in [0,1]")
		pretty := dfs.Bool("pretty", false, "indent the output")
		if err := dfs.Parse(rest); err != nil {
			return 2
		}
		t := xmltree.Random(rng, xmltree.RandomConfig{
			Size:      *size,
			Labels:    strings.Split(*labels, ","),
			MaxFanout: *fanout,
			Skew:      *skew,
		})
		if err := t.Write(os.Stdout, *pretty); err != nil {
			fmt.Fprintf(os.Stderr, "xgen: %v\n", err)
			return 2
		}
		if !*pretty {
			fmt.Println()
		}
		return 0

	case "inventory":
		ifs := flag.NewFlagSet("inventory", flag.ContinueOnError)
		books := ifs.Int("books", 10, "number of books")
		low := ifs.Float64("low", 0.3, "low-stock fraction")
		pretty := ifs.Bool("pretty", false, "indent the output")
		if err := ifs.Parse(rest); err != nil {
			return 2
		}
		t := generate.Inventory(rng, *books, *low)
		if err := t.Write(os.Stdout, *pretty); err != nil {
			fmt.Fprintf(os.Stderr, "xgen: %v\n", err)
			return 2
		}
		if !*pretty {
			fmt.Println()
		}
		return 0

	case "pattern":
		pfs := flag.NewFlagSet("pattern", flag.ContinueOnError)
		size := pfs.Int("size", 6, "number of pattern nodes")
		branch := pfs.Float64("branch", 0.4, "branching probability (0 = linear)")
		wildcard := pfs.Float64("wildcard", 0.25, "wildcard probability")
		desc := pfs.Float64("desc", 0.35, "descendant-edge probability")
		labels := pfs.String("labels", "a,b,c", "comma-separated label alphabet")
		count := pfs.Int("count", 1, "how many patterns to emit")
		if err := pfs.Parse(rest); err != nil {
			return 2
		}
		for i := 0; i < *count; i++ {
			p := pattern.Random(rng, pattern.RandomConfig{
				Size:        *size,
				Labels:      strings.Split(*labels, ","),
				PWildcard:   *wildcard,
				PDescendant: *desc,
				PBranch:     *branch,
			})
			fmt.Println(p)
		}
		return 0

	case "hardpair":
		hfs := flag.NewFlagSet("hardpair", flag.ContinueOnError)
		n := hfs.Int("n", 2, "family index (≥ 2 is non-contained)")
		if err := hfs.Parse(rest); err != nil {
			return 2
		}
		p, q := generate.HardPair(*n)
		fmt.Printf("p = %s\nq = %s\n", p, q)
		return 0

	default:
		fmt.Fprintf(os.Stderr, "xgen: unknown subcommand %q\n", sub)
		return 2
	}
}
