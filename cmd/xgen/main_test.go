package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// capture returns what run printed to stdout.
func capture(t *testing.T, args []string) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	code := run(args)
	w.Close()
	os.Stdout = old
	return <-done, code
}

func TestDocDeterministic(t *testing.T) {
	a, code := capture(t, []string{"-seed", "7", "doc", "-size", "30"})
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	b, _ := capture(t, []string{"-seed", "7", "doc", "-size", "30"})
	if a != b {
		t.Fatalf("same seed differs")
	}
	c, _ := capture(t, []string{"-seed", "8", "doc", "-size", "30"})
	if a == c {
		t.Fatalf("different seeds agree")
	}
	if !strings.HasPrefix(a, "<") {
		t.Fatalf("not XML: %q", a[:20])
	}
}

func TestInventory(t *testing.T) {
	out, code := capture(t, []string{"inventory", "-books", "5"})
	if code != 0 || strings.Count(out, "<book>") != 5 {
		t.Fatalf("exit %d out %s", code, out)
	}
}

func TestPatterns(t *testing.T) {
	out, code := capture(t, []string{"pattern", "-count", "3", "-branch", "0"})
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "/") {
			t.Fatalf("not an xpath: %q", l)
		}
	}
}

func TestHardPair(t *testing.T) {
	out, code := capture(t, []string{"hardpair", "-n", "3"})
	if code != 0 || !strings.Contains(out, "b3") {
		t.Fatalf("exit %d out %q", code, out)
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{nil, {"bogus"}, {"doc", "-size", "x"}} {
		if _, code := capture(t, args); code != 2 {
			t.Fatalf("run(%v) != 2", args)
		}
	}
}
