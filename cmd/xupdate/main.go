// Command xupdate applies XPath-driven insert and delete operations to an
// XML document read from stdin and writes the result to stdout.
//
// Usage:
//
//	xupdate [-pretty] <op> <xpath> [<xml>] [<op> <xpath> [<xml>] ...]
//
// where <op> is "insert" (which takes the XML fragment to insert) or
// "delete". Operations apply left to right with the mutating semantics of
// Section 3 of "Conflicting XML Updates": insert adds a fresh copy of the
// fragment as a child of every node selected by the expression; delete
// removes the subtree rooted at every selected node.
//
// Example:
//
//	xupdate insert '//book[.//low]' '<restock/>' < inventory.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"xmlconflict"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("xupdate", flag.ContinueOnError)
	pretty := fs.Bool("pretty", false, "indent the output")
	listen := fs.String("listen", "", "serve /metrics, /debug/pprof, and health probes on this address while running")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listen != "" {
		obs, addr, err := xmlconflict.ServeObservability(*listen, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xupdate: %v\n", err)
			return 2
		}
		defer obs.Close()
		fmt.Fprintf(os.Stderr, "xupdate: observability on http://%s\n", addr)
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprintln(os.Stderr, "xupdate: no operations given")
		return 2
	}

	doc, err := xmlconflict.ParseXML(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xupdate: reading stdin: %v\n", err)
		return 2
	}

	for len(rest) > 0 {
		op := rest[0]
		switch op {
		case "insert":
			if len(rest) < 3 {
				fmt.Fprintln(os.Stderr, "xupdate: insert needs <xpath> <xml>")
				return 2
			}
			p, err := xmlconflict.ParseXPath(rest[1])
			if err != nil {
				fmt.Fprintf(os.Stderr, "xupdate: %v\n", err)
				return 2
			}
			x, err := xmlconflict.ParseXMLString(rest[2])
			if err != nil {
				fmt.Fprintf(os.Stderr, "xupdate: %v\n", err)
				return 2
			}
			ins := xmlconflict.Insert{P: p, X: x}
			points, err := ins.Apply(doc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xupdate: %v\n", err)
				return 2
			}
			fmt.Fprintf(os.Stderr, "insert %s: %d insertion points\n", rest[1], len(points))
			rest = rest[3:]
		case "delete":
			if len(rest) < 2 {
				fmt.Fprintln(os.Stderr, "xupdate: delete needs <xpath>")
				return 2
			}
			p, err := xmlconflict.ParseXPath(rest[1])
			if err != nil {
				fmt.Fprintf(os.Stderr, "xupdate: %v\n", err)
				return 2
			}
			del := xmlconflict.Delete{P: p}
			points, err := del.Apply(doc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xupdate: %v\n", err)
				return 2
			}
			fmt.Fprintf(os.Stderr, "delete %s: %d deletion points\n", rest[1], len(points))
			rest = rest[2:]
		default:
			fmt.Fprintf(os.Stderr, "xupdate: unknown operation %q\n", op)
			return 2
		}
	}

	if err := doc.Write(os.Stdout, *pretty); err != nil {
		fmt.Fprintf(os.Stderr, "xupdate: writing: %v\n", err)
		return 2
	}
	if !*pretty {
		fmt.Println()
	}
	return 0
}
