package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// withIO runs f with stdin fed from in and returns captured stdout.
func withIO(t *testing.T, in string, f func()) string {
	t.Helper()
	oldIn, oldOut := os.Stdin, os.Stdout
	defer func() { os.Stdin, os.Stdout = oldIn, oldOut }()

	rIn, wIn, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		io.WriteString(wIn, in)
		wIn.Close()
	}()
	os.Stdin = rIn

	rOut, wOut, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wOut
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, rOut)
		done <- buf.String()
	}()

	f()
	wOut.Close()
	return <-done
}

func TestInsertThenDelete(t *testing.T) {
	var code int
	out := withIO(t, "<inv><book><low/></book><book/></inv>", func() {
		code = run([]string{"insert", "//book[low]", "<restock/>", "delete", "//low"})
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "<restock/>") || strings.Contains(out, "<low/>") {
		t.Fatalf("output wrong: %s", out)
	}
}

func TestPretty(t *testing.T) {
	var code int
	out := withIO(t, "<a><b/></a>", func() {
		code = run([]string{"-pretty", "insert", "/a", "<c/>"})
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "\n  <b/>") {
		t.Fatalf("not pretty: %q", out)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		args []string
	}{
		{"no ops", "<a/>", nil},
		{"bad stdin", "not xml", []string{"delete", "/a/b"}},
		{"insert missing xml", "<a/>", []string{"insert", "/a"}},
		{"delete missing xpath", "<a/>", []string{"delete"}},
		{"unknown op", "<a/>", []string{"replace", "/a"}},
		{"bad xpath", "<a/>", []string{"delete", "]["}},
		{"bad payload", "<a/>", []string{"insert", "/a", "<x>"}},
		{"delete root", "<a/>", []string{"delete", "/a"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var code int
			withIO(t, c.in, func() { code = run(c.args) })
			if code != 2 {
				t.Fatalf("exit = %d, want 2", code)
			}
		})
	}
}
