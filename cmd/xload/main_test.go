package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xmlconflict/internal/loadgen"
)

// capture runs the CLI with file-backed stdout/stderr and returns the
// exit code plus both streams.
func capture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "err")
	if err != nil {
		t.Fatal(err)
	}
	code := run(args, outF, errF)
	readBack := func(f *os.File) string {
		data, rerr := os.ReadFile(f.Name())
		if rerr != nil {
			t.Fatal(rerr)
		}
		f.Close()
		return string(data)
	}
	return code, readBack(outF), readBack(errF)
}

func writeReport(t *testing.T, dir, name string, mut func(*loadgen.Report)) string {
	t.Helper()
	rep := loadgen.Report{
		SchemaVersion: loadgen.ReportSchemaVersion,
		Scenario:      "conflict-heavy",
		Target:        "http://x",
		Seed:          1,
		Started:       time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC),
		Config:        loadgen.RunConfig{Rate: 100, Arrival: loadgen.ArrivalPoisson, DurationMs: 1000},
		Counts:        loadgen.Counts{Offered: 50, Sent: 50, OK: 40, Conflicts: 10},
		Rates:         loadgen.Rates{ThroughputRPS: 50, OK: 0.8, Conflict: 0.2},
		Latency:       loadgen.LatencyStats{P50Us: 1000, P90Us: 2000, P99Us: 5000, MaxUs: 6000, MeanUs: 1200},
		Service:       loadgen.LatencyStats{P50Us: 900, P90Us: 1800, P99Us: 4500, MaxUs: 5500, MeanUs: 1100},
		SLO:           loadgen.SLOResult{Pass: true},
		Tail: []loadgen.TailSample{{
			Kind: loadgen.TailConflict, Op: "docs.update", Status: 409,
			LatencyUs: 2000, ServiceUs: 1800, TraceID: "beef", Resolved: true, TraceName: "http.docs.update",
		}},
	}
	if mut != nil {
		mut(&rep)
	}
	path := filepath.Join(dir, name)
	if err := loadgen.WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestListScenarios(t *testing.T) {
	code, out, _ := capture(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, name := range []string{"read-heavy", "conflict-heavy", "batch-analyze", "store-churn"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestNoModeIsUsageError(t *testing.T) {
	code, _, errOut := capture(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "need -scenario") {
		t.Fatalf("stderr: %s", errOut)
	}
}

func TestUnknownScenario(t *testing.T) {
	code, _, errOut := capture(t, "-scenario", "nope")
	if code != 2 || !strings.Contains(errOut, "nope") {
		t.Fatalf("exit %d, stderr %s", code, errOut)
	}
}

func TestCheckMode(t *testing.T) {
	dir := t.TempDir()
	good := writeReport(t, dir, "good.json", nil)
	code, out, _ := capture(t, "-check", good)
	if code != 0 || !strings.Contains(out, "ok") {
		t.Fatalf("check of valid report: exit %d, out %s", code, out)
	}

	bad := writeReport(t, dir, "bad.json", func(r *loadgen.Report) { r.Tail = nil })
	code, _, errOut := capture(t, "-check", bad)
	if code != 1 || !strings.Contains(errOut, "tail") {
		t.Fatalf("check of tail-less report: exit %d, stderr %s", code, errOut)
	}

	if code, _, _ = capture(t, "-check", filepath.Join(dir, "missing.json")); code != 2 {
		t.Fatalf("check of missing file: exit %d, want 2", code)
	}
}

func TestCompareMode(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", nil)
	same := writeReport(t, dir, "same.json", nil)
	worse := writeReport(t, dir, "worse.json", func(r *loadgen.Report) {
		r.Latency.P99Us = 50_000
	})

	code, out, _ := capture(t, "-compare", base+","+same)
	if code != 0 || !strings.Contains(out, "no drift") {
		t.Fatalf("identical compare: exit %d, out %s", code, out)
	}

	code, out, _ = capture(t, "-compare", base+","+worse)
	if code != 1 || !strings.Contains(out, "latency.p99_us") {
		t.Fatalf("regressed compare: exit %d, out %s", code, out)
	}

	if code, _, _ = capture(t, "-compare", base); code != 2 {
		t.Fatalf("malformed -compare spec: exit %d, want 2", code)
	}
}

func TestRunModeUnreachableTarget(t *testing.T) {
	// A run against a dead port must fail preflight with exit 2 and
	// send nothing — not hang for the full duration.
	start := time.Now()
	code, _, errOut := capture(t,
		"-scenario", "read-heavy", "-target", "http://127.0.0.1:1",
		"-duration", "5s", "-quiet")
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr %s", code, errOut)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("preflight failure took %v", elapsed)
	}
}
