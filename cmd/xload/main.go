// Command xload is the open-loop load harness for xserve: named
// workload scenarios driven at a production-shaped arrival rate, with
// SLO-gated JSON reports and trace-linked tail forensics.
//
// Usage:
//
//	xload -scenario conflict-heavy -duration 10s -out r.json
//	xload -scenario read-heavy -rate 800 -arrival constant
//	xload -list
//	xload -compare old.json,new.json
//	xload -check r.json
//
// A run preflights the target (GET /readyz must answer 200; GET
// /healthz contributes the server's build/config identity to the
// report), materializes an open-loop arrival schedule (constant or
// Poisson at -rate, reproducible per -seed), and drives the scenario's
// request mix with -concurrency workers. Latency is measured from each
// request's *scheduled* arrival — coordinated-omission-safe: a server
// that builds backlog sees that backlog in the percentiles.
//
// Scenarios (xload -list):
//
//	read-heavy      POST /v1/detect, 90% cache-friendly pairs
//	conflict-heavy  /v1/docs update storm; stale-base ops rejected 409
//	batch-analyze   /v1/detect/batch + /v1/analyze mixes
//	store-churn     create/update/drop document lifecycles (WAL churn)
//	store-churn-sharded  churn under 16 tenant-prefixed doc names
//	                     (routes across every shard of a -shards server)
//	failover        marked writes against a replicated cluster
//	                (-targets node1,node2,...); kill the primary mid-run
//	                and the report's repl block shows time-to-ready, the
//	                promotion window, and the lost-ack audit (an
//	                acknowledged write missing afterward fails the run)
//	partition-soak  marked writes while a fault flapper cuts the cluster
//	                open on a schedule (symmetric node isolations and
//	                one-way link cuts, injected via each node's
//	                POST /v1/repl/faults — start xserve with -repl-admin)
//	                and a background auditor times how long the replicas
//	                stay apart; the soak block records every fault
//	                window, per-outage reconvergence, and the worst
//	                divergence window, gated by max_divergence_ms and
//	                no_lost_acks
//
// The report (-out) is schema-stable JSON: counts, CO-safe and
// service-time percentiles, shed/409/timeout rates, the server
// identity that produced them, the SLO verdict, and tail samples whose
// trace_id replays server-side via GET /v1/trace/{id}. -compare diffs
// two reports deterministically (latency regressions > 30%, outcome-
// rate drift > 2pp); -check validates a report's consistency and its
// trace-forensics invariant (CI's smoke gate).
//
// Exit codes: 0 clean (or -report-only), 1 SLO violation / drift /
// failed check, 2 harness errors (unreachable target, bad flags).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xmlconflict/internal/loadgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("xload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	target := fs.String("target", "http://127.0.0.1:8344", "base URL of the xserve under load")
	targets := fs.String("targets", "", "comma-separated cluster fan-out (replicated xserve nodes; overrides -target)")
	scenario := fs.String("scenario", "", "scenario to run (see -list)")
	list := fs.Bool("list", false, "list built-in scenarios and exit")
	duration := fs.Duration("duration", 10*time.Second, "how long to schedule arrivals for")
	rate := fs.Float64("rate", 0, "arrivals per second (0 = scenario default)")
	arrival := fs.String("arrival", "", "arrival process: poisson or constant (default: scenario's)")
	concurrency := fs.Int("concurrency", 0, "max in-flight requests (0 = scenario default)")
	seed := fs.Int64("seed", 1, "workload seed (schedule and op mix are reproducible per seed)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request budget; beyond it the request counts as a timeout")
	tail := fs.Int("tail", 5, "kept tail samples per outcome kind")
	out := fs.String("out", "", "write the JSON report here")
	label := fs.String("label", "", "report label (default: scenario name)")
	compare := fs.String("compare", "", "compare two reports: baseline.json,current.json")
	check := fs.String("check", "", "validate a report file's consistency and trace-linked tails")
	reportOnly := fs.Bool("report-only", false, "report SLO violations without failing the exit code")
	quiet := fs.Bool("quiet", false, "suppress the live progress line")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *list:
		for _, sc := range loadgen.Scenarios() {
			store := ""
			if sc.NeedsStore {
				store = " [needs -store-dir]"
			}
			fmt.Fprintf(stdout, "%-15s %4.0f rps %-8s  %s%s\n", sc.Name, sc.Rate, sc.Arrival, sc.Description, store)
		}
		return 0
	case *compare != "":
		return runCompare(*compare, stdout, stderr)
	case *check != "":
		rep, err := loadgen.LoadReport(*check)
		if err != nil {
			fmt.Fprintf(stderr, "xload: %v\n", err)
			return 2
		}
		if err := loadgen.Check(rep); err != nil {
			fmt.Fprintf(stderr, "xload: check %s: %v\n", *check, err)
			return 1
		}
		fmt.Fprintf(stdout, "xload: %s ok: scenario %s, %d sent, %d tail samples\n",
			*check, rep.Scenario, rep.Counts.Sent, len(rep.Tail))
		return 0
	case *scenario == "":
		fmt.Fprintln(stderr, "xload: need -scenario (or -list, -compare, -check)")
		return 2
	}

	sc, err := loadgen.Lookup(*scenario)
	if err != nil {
		fmt.Fprintf(stderr, "xload: %v\n", err)
		return 2
	}
	opts := loadgen.Options{
		Target:      *target,
		Targets:     splitTargets(*targets),
		Duration:    *duration,
		Rate:        *rate,
		Arrival:     *arrival,
		Concurrency: *concurrency,
		Seed:        *seed,
		Timeout:     *timeout,
		TailSamples: *tail,
		Label:       *label,
	}
	if !*quiet {
		opts.Progress = stderr
	}

	// SIGINT/SIGTERM abort the run; whatever completed is still
	// reported, so a soak cut short keeps its evidence.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	rep, err := loadgen.Run(ctx, sc, opts)
	if err != nil && rep.Counts.Sent == 0 {
		fmt.Fprintf(stderr, "xload: %v\n", err)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "xload: run aborted: %v (reporting the completed part)\n", err)
	}
	fmt.Fprint(stdout, loadgen.FormatReport(rep))
	if *out != "" {
		if werr := loadgen.WriteReport(*out, rep); werr != nil {
			fmt.Fprintf(stderr, "xload: %v\n", werr)
			return 2
		}
		fmt.Fprintf(stderr, "xload: wrote %s\n", *out)
	}
	if !rep.SLO.Pass && !*reportOnly {
		return 1
	}
	return 0
}

// splitTargets parses the -targets fan-out list.
func splitTargets(spec string) []string {
	var out []string
	for _, t := range strings.Split(spec, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// runCompare is the -compare mode. Exit 0 = no drift, 1 = drift,
// 2 = errors.
func runCompare(spec string, stdout, stderr *os.File) int {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		fmt.Fprintln(stderr, "xload: -compare needs baseline.json,current.json")
		return 2
	}
	oldR, err := loadgen.LoadReport(strings.TrimSpace(parts[0]))
	if err != nil {
		fmt.Fprintf(stderr, "xload: %v\n", err)
		return 2
	}
	newR, err := loadgen.LoadReport(strings.TrimSpace(parts[1]))
	if err != nil {
		fmt.Fprintf(stderr, "xload: %v\n", err)
		return 2
	}
	findings, notes := loadgen.Compare(oldR, newR)
	fmt.Fprint(stdout, loadgen.FormatComparison(oldR, newR, findings, notes))
	if len(findings) > 0 {
		return 1
	}
	return 0
}
