package main

import (
	"os"
	"testing"
)

func quietly(t *testing.T, f func() int) int {
	t.Helper()
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old }()
	return f()
}

func TestRunSelected(t *testing.T) {
	if code := quietly(t, func() int { return run([]string{"-run", "E2,E11,E12", "-reps", "1"}) }); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if code := quietly(t, func() int { return run([]string{"-run", "E2", "-md"}) }); code != 0 {
		t.Fatalf("markdown exit = %d", code)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if code := quietly(t, func() int { return run([]string{"-run", "E99"}) }); code != 2 {
		t.Fatalf("unknown experiment accepted")
	}
}
