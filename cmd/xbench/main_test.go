package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

func quietly(t *testing.T, f func() int) int {
	t.Helper()
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old }()
	return f()
}

func TestRunSelected(t *testing.T) {
	if code := quietly(t, func() int { return run([]string{"-run", "E2,E11,E12", "-reps", "1"}) }); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if code := quietly(t, func() int { return run([]string{"-run", "E2", "-md"}) }); code != 0 {
		t.Fatalf("markdown exit = %d", code)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if code := quietly(t, func() int { return run([]string{"-run", "E99"}) }); code != 2 {
		t.Fatalf("unknown experiment accepted")
	}
}

func TestJSONOutput(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	code := run([]string{"-json", "-run", "E2,E3", "-reps", "1"})
	w.Close()
	os.Stdout = old
	out := <-done
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 JSON lines, got %d:\n%s", len(lines), out)
	}
	for i, line := range lines {
		var res struct {
			ID      string           `json:"id"`
			Name    string           `json:"name"`
			NsPerOp int64            `json:"ns_per_op"`
			Rows    int              `json:"rows"`
			Metrics map[string]int64 `json:"metrics"`
		}
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			t.Fatalf("line %d is not JSON: %q: %v", i, line, err)
		}
		if res.ID == "" || res.Name == "" || res.NsPerOp <= 0 || res.Rows == 0 {
			t.Fatalf("line %d incomplete: %+v", i, res)
		}
	}
	// E3 exercises the instrumented linear detectors, so its metrics must
	// carry the candidate/product counters.
	var e3 struct {
		Metrics map[string]int64 `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &e3); err != nil {
		t.Fatal(err)
	}
	if e3.Metrics["detect.calls"] == 0 || e3.Metrics["automata.products"] == 0 {
		t.Fatalf("E3 metrics missing counters: %v", e3.Metrics)
	}
}
