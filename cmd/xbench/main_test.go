package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xmlconflict/internal/experiments"
)

func quietly(t *testing.T, f func() int) int {
	t.Helper()
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old }()
	return f()
}

func TestRunSelected(t *testing.T) {
	if code := quietly(t, func() int { return run([]string{"-run", "E2,E11,E12", "-reps", "1"}) }); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if code := quietly(t, func() int { return run([]string{"-run", "E2", "-md"}) }); code != 0 {
		t.Fatalf("markdown exit = %d", code)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if code := quietly(t, func() int { return run([]string{"-run", "E99"}) }); code != 2 {
		t.Fatalf("unknown experiment accepted")
	}
}

func TestJSONOutput(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	code := run([]string{"-json", "-run", "E2,E3", "-reps", "1"})
	w.Close()
	os.Stdout = old
	out := <-done
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 JSON lines, got %d:\n%s", len(lines), out)
	}
	for i, line := range lines {
		var res struct {
			ID      string           `json:"id"`
			Name    string           `json:"name"`
			NsPerOp int64            `json:"ns_per_op"`
			Rows    int              `json:"rows"`
			Metrics map[string]int64 `json:"metrics"`
		}
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			t.Fatalf("line %d is not JSON: %q: %v", i, line, err)
		}
		if res.ID == "" || res.Name == "" || res.NsPerOp <= 0 || res.Rows == 0 {
			t.Fatalf("line %d incomplete: %+v", i, res)
		}
	}
	// E3 exercises the instrumented linear detectors, so its metrics must
	// carry the candidate/product counters.
	var e3 struct {
		Metrics map[string]int64 `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &e3); err != nil {
		t.Fatal(err)
	}
	if e3.Metrics["detect.calls"] == 0 || e3.Metrics["automata.products"] == 0 {
		t.Fatalf("E3 metrics missing counters: %v", e3.Metrics)
	}
}

func TestTrajectoryOutAndCompare(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_test.json")
	if code := quietly(t, func() int {
		return run([]string{"-json", "-run", "E2", "-reps", "1", "-samples", "2", "-out", out})
	}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	f, err := experiments.LoadBenchFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if f.Label != "test" || len(f.Results) != 1 || f.Results[0].ID != "E2" {
		t.Fatalf("trajectory file: %+v", f)
	}
	if f.Results[0].Samples != 2 || f.Results[0].P99Ns <= 0 {
		t.Fatalf("quantiles missing: %+v", f.Results[0])
	}

	// Self-comparison is clean (exit 0); a fabricated slowdown trips
	// exit 1; garbage input trips exit 2.
	if code := quietly(t, func() int { return run([]string{"-compare", out + "," + out}) }); code != 0 {
		t.Fatalf("self compare exit = %d", code)
	}
	slow := f
	slow.Results = []experiments.BenchResult{f.Results[0]}
	slow.Results[0].NsPerOp = f.Results[0].NsPerOp * 2
	slowPath := filepath.Join(dir, "BENCH_slow.json")
	if err := experiments.WriteBenchFile(slowPath, slow); err != nil {
		t.Fatal(err)
	}
	if code := quietly(t, func() int { return run([]string{"-compare", out + "," + slowPath}) }); code != 1 {
		t.Fatalf("regression compare exit = %d", code)
	}
	if code := quietly(t, func() int { return run([]string{"-compare", out}) }); code != 2 {
		t.Fatalf("malformed -compare exit = %d", code)
	}
	if code := quietly(t, func() int { return run([]string{"-compare", out + ",/nonexistent.json"}) }); code != 2 {
		t.Fatalf("missing file exit = %d", code)
	}
}

func TestTrajectoryLabel(t *testing.T) {
	for _, tc := range []struct{ label, out, want string }{
		{"", "BENCH_ci.json", "ci"},
		{"", "results/BENCH_seed.json", "seed"},
		{"", "plain.json", "plain"},
		{"", "BENCH_.json", "run"},
		{"explicit", "BENCH_ci.json", "explicit"},
	} {
		if got := trajectoryLabel(tc.label, tc.out); got != tc.want {
			t.Errorf("trajectoryLabel(%q, %q) = %q, want %q", tc.label, tc.out, got, tc.want)
		}
	}
}
