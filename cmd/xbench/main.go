// Command xbench regenerates the experiments of EXPERIMENTS.md: the
// reproduction of every theorem, lemma, and figure of "Conflicting XML
// Updates" (EDBT 2006), as correctness validations plus complexity-shape
// measurements.
//
// Usage:
//
//	xbench                     run all experiments (E1-E19)
//	xbench -run E3,E7          run selected experiments
//	xbench -reps 10            increase averaging repetitions
//	xbench -seed 42            change the workload seed
//	xbench -md                 emit Markdown tables (for EXPERIMENTS.md)
//	xbench -json               emit one JSON object per experiment
//	xbench -samples 5          wall-time samples per experiment (quantiles)
//	xbench -json -out BENCH_x.json   also write a trajectory file
//	xbench -compare old.json,new.json   flag >30% ns/op regressions
//	xbench -listen :9090       serve /metrics + /debug/pprof while grinding
//
// With -json each experiment becomes one line of machine-readable output:
//
//	{"id":"E7","name":"...","rows":4,"samples":3,"ns_per_op":1234,
//	 "p50_ns":...,"p90_ns":...,"p99_ns":...,"metrics":{...}}
//
// ns_per_op is the fastest sample's wall time divided by the row count;
// p50/p90/p99 are quantiles of per-sample wall time (degenerate with
// -samples 1); metrics carries the telemetry counters the experiment's
// decision procedures recorded.
//
// -out writes the same results as one schema-stable BENCH_<label>.json
// trajectory file. -compare loads two such files and reports every
// experiment whose ns/op regressed beyond 30%: exit 0 when clean, 1 when
// regressions were flagged, 2 on errors. CI runs it report-only against
// the committed BENCH_seed.json baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"xmlconflict/internal/experiments"
	"xmlconflict/internal/telemetry/obshttp"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("xbench", flag.ContinueOnError)
	runIDs := fs.String("run", "", "comma-separated experiment ids (default: all)")
	seed := fs.Int64("seed", 1, "workload seed")
	reps := fs.Int("reps", 3, "averaging repetitions")
	md := fs.Bool("md", false, "emit Markdown tables")
	jsonOut := fs.Bool("json", false, "emit one JSON object per experiment")
	samples := fs.Int("samples", 1, "wall-time samples per experiment (latency quantiles)")
	out := fs.String("out", "", "write results as a BENCH_<label>.json trajectory file")
	label := fs.String("label", "", "trajectory label (default: derived from -out filename)")
	compare := fs.String("compare", "", "compare two trajectory files: baseline.json,current.json")
	withSpan := fs.Bool("span", false, "trace one representative iteration per experiment and embed its span tree in the -out report")
	listen := fs.String("listen", "", "serve /metrics, /debug/pprof, and health probes on this address while running")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listen != "" {
		obs, addr, err := obshttp.Serve(*listen, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xbench: %v\n", err)
			return 2
		}
		defer obs.Close()
		fmt.Fprintf(os.Stderr, "xbench: observability on http://%s\n", addr)
	}
	if *compare != "" {
		return runCompare(*compare)
	}

	ids := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19"}
	if *runIDs != "" {
		ids = ids[:0]
		for _, id := range strings.Split(*runIDs, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	enc := json.NewEncoder(os.Stdout)
	var results []experiments.BenchResult
	for _, id := range ids {
		res, tb, err := experiments.Measure(id, *seed, *reps, *samples)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xbench: %v\n", err)
			return 2
		}
		if *withSpan {
			// A separate reps=1 run outside the timed samples, so the
			// trace never distorts the measurement it explains.
			sv, err := experiments.MeasureSpan(id, *seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xbench: -span %s: %v\n", id, err)
				return 2
			}
			res.Span = sv
		}
		if *out != "" {
			results = append(results, res)
		}
		switch {
		case *jsonOut:
			if err := enc.Encode(res); err != nil {
				fmt.Fprintf(os.Stderr, "xbench: %v\n", err)
				return 2
			}
		case *md:
			printMarkdown(tb)
		default:
			printPlain(tb)
		}
	}
	if *out != "" {
		f := experiments.NewBenchFile(trajectoryLabel(*label, *out), *seed, *reps, results)
		if err := experiments.WriteBenchFile(*out, f); err != nil {
			fmt.Fprintf(os.Stderr, "xbench: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "xbench: wrote %s (%d experiments)\n", *out, len(results))
	}
	return 0
}

// trajectoryLabel derives a label from the -out filename when -label is
// not given: "BENCH_ci.json" -> "ci".
func trajectoryLabel(label, out string) string {
	if label != "" {
		return label
	}
	base := strings.TrimSuffix(filepath.Base(out), ".json")
	base = strings.TrimPrefix(base, "BENCH_")
	if base == "" {
		return "run"
	}
	return base
}

// runCompare is the -compare mode: report regressions between two
// trajectory files. Exit 0 = clean, 1 = regressions, 2 = errors.
func runCompare(spec string) int {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		fmt.Fprintln(os.Stderr, "xbench: -compare needs baseline.json,current.json")
		return 2
	}
	oldF, err := experiments.LoadBenchFile(strings.TrimSpace(parts[0]))
	if err != nil {
		fmt.Fprintf(os.Stderr, "xbench: %v\n", err)
		return 2
	}
	newF, err := experiments.LoadBenchFile(strings.TrimSpace(parts[1]))
	if err != nil {
		fmt.Fprintf(os.Stderr, "xbench: %v\n", err)
		return 2
	}
	regs, notes := experiments.CompareBench(oldF, newF, experiments.DefaultRegressionThreshold)
	fmt.Print(experiments.FormatComparison(oldF, newF, regs, notes))
	if len(regs) > 0 {
		return 1
	}
	return 0
}

func printPlain(t experiments.Table) {
	fmt.Printf("=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", maxInt(0, widths[i]-len(c))))
			}
		}
		fmt.Println("  " + strings.TrimRight(b.String(), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Printf("  note: %s\n", n)
	}
	fmt.Println()
}

func printMarkdown(t experiments.Table) {
	fmt.Printf("### %s — %s\n\n", t.ID, t.Title)
	fmt.Println("| " + strings.Join(t.Header, " | ") + " |")
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Println("| " + strings.Join(seps, " | ") + " |")
	for _, row := range t.Rows {
		fmt.Println("| " + strings.Join(row, " | ") + " |")
	}
	fmt.Println()
	for _, n := range t.Notes {
		fmt.Printf("*%s*\n\n", n)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
