// Command xbench regenerates the experiments of EXPERIMENTS.md: the
// reproduction of every theorem, lemma, and figure of "Conflicting XML
// Updates" (EDBT 2006), as correctness validations plus complexity-shape
// measurements.
//
// Usage:
//
//	xbench                 run all experiments (E1-E12)
//	xbench -run E3,E7      run selected experiments
//	xbench -reps 10        increase averaging repetitions
//	xbench -seed 42        change the workload seed
//	xbench -md             emit Markdown tables (for EXPERIMENTS.md)
//	xbench -json           emit one JSON object per experiment
//
// With -json each experiment becomes one line of machine-readable output:
//
//	{"id":"E7","name":"...","ns_per_op":1234,"metrics":{"search.candidates":600000,...}}
//
// ns_per_op is the experiment's total wall time divided by its row count,
// and metrics carries the telemetry counters the experiment's decision
// procedures recorded (empty for experiments that record none).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xmlconflict/internal/experiments"
)

// jsonResult is the -json per-experiment output shape, stable for tooling.
type jsonResult struct {
	ID      string           `json:"id"`
	Name    string           `json:"name"`
	NsPerOp int64            `json:"ns_per_op"`
	Rows    int              `json:"rows"`
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("xbench", flag.ContinueOnError)
	runIDs := fs.String("run", "", "comma-separated experiment ids (default: all)")
	seed := fs.Int64("seed", 1, "workload seed")
	reps := fs.Int("reps", 3, "averaging repetitions")
	md := fs.Bool("md", false, "emit Markdown tables")
	jsonOut := fs.Bool("json", false, "emit one JSON object per experiment")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ids := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17"}
	if *runIDs != "" {
		ids = ids[:0]
		for _, id := range strings.Split(*runIDs, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	enc := json.NewEncoder(os.Stdout)
	for _, id := range ids {
		start := time.Now()
		tb, err := experiments.ByID(id, *seed, *reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xbench: %v\n", err)
			return 2
		}
		elapsed := time.Since(start)
		switch {
		case *jsonOut:
			rows := len(tb.Rows)
			res := jsonResult{ID: tb.ID, Name: tb.Title, Rows: rows, Metrics: tb.Metrics}
			if rows > 0 {
				res.NsPerOp = elapsed.Nanoseconds() / int64(rows)
			} else {
				res.NsPerOp = elapsed.Nanoseconds()
			}
			if err := enc.Encode(res); err != nil {
				fmt.Fprintf(os.Stderr, "xbench: %v\n", err)
				return 2
			}
		case *md:
			printMarkdown(tb)
		default:
			printPlain(tb)
		}
	}
	return 0
}

func printPlain(t experiments.Table) {
	fmt.Printf("=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", maxInt(0, widths[i]-len(c))))
			}
		}
		fmt.Println("  " + strings.TrimRight(b.String(), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Printf("  note: %s\n", n)
	}
	fmt.Println()
}

func printMarkdown(t experiments.Table) {
	fmt.Printf("### %s — %s\n\n", t.ID, t.Title)
	fmt.Println("| " + strings.Join(t.Header, " | ") + " |")
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Println("| " + strings.Join(seps, " | ") + " |")
	for _, row := range t.Rows {
		fmt.Println("| " + strings.Join(row, " | ") + " |")
	}
	fmt.Println()
	for _, n := range t.Notes {
		fmt.Printf("*%s*\n\n", n)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
