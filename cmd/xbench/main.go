// Command xbench regenerates the experiments of EXPERIMENTS.md: the
// reproduction of every theorem, lemma, and figure of "Conflicting XML
// Updates" (EDBT 2006), as correctness validations plus complexity-shape
// measurements.
//
// Usage:
//
//	xbench                 run all experiments (E1-E12)
//	xbench -run E3,E7      run selected experiments
//	xbench -reps 10        increase averaging repetitions
//	xbench -seed 42        change the workload seed
//	xbench -md             emit Markdown tables (for EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xmlconflict/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("xbench", flag.ContinueOnError)
	runIDs := fs.String("run", "", "comma-separated experiment ids (default: all)")
	seed := fs.Int64("seed", 1, "workload seed")
	reps := fs.Int("reps", 3, "averaging repetitions")
	md := fs.Bool("md", false, "emit Markdown tables")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var tables []experiments.Table
	if *runIDs == "" {
		tables = experiments.All(*seed, *reps)
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			tb, err := experiments.ByID(strings.TrimSpace(id), *seed, *reps)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xbench: %v\n", err)
				return 2
			}
			tables = append(tables, tb)
		}
	}
	for _, tb := range tables {
		if *md {
			printMarkdown(tb)
		} else {
			printPlain(tb)
		}
	}
	return 0
}

func printPlain(t experiments.Table) {
	fmt.Printf("=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", maxInt(0, widths[i]-len(c))))
			}
		}
		fmt.Println("  " + strings.TrimRight(b.String(), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Printf("  note: %s\n", n)
	}
	fmt.Println()
}

func printMarkdown(t experiments.Table) {
	fmt.Printf("### %s — %s\n\n", t.ID, t.Title)
	fmt.Println("| " + strings.Join(t.Header, " | ") + " |")
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Println("| " + strings.Join(seps, " | ") + " |")
	for _, row := range t.Rows {
		fmt.Println("| " + strings.Join(row, " | ") + " |")
	}
	fmt.Println()
	for _, n := range t.Notes {
		fmt.Printf("*%s*\n\n", n)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
