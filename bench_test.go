// Benchmarks anchoring the experiments of EXPERIMENTS.md (see DESIGN.md
// for the experiment index). Each Benchmark corresponds to a table or
// series that cmd/xbench regenerates; run them with
//
//	go test -bench=. -benchmem
package xmlconflict_test

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"xmlconflict/internal/containment"
	"xmlconflict/internal/core"
	"xmlconflict/internal/generate"
	"xmlconflict/internal/match"
	"xmlconflict/internal/ops"
	"xmlconflict/internal/pattern"
	"xmlconflict/internal/program"
	"xmlconflict/internal/schema"
	"xmlconflict/internal/telemetry"
	"xmlconflict/internal/xmltree"
	"xmlconflict/internal/xpath"
)

// BenchmarkE1Eval measures the embedding evaluator's O(|t|·|p|) scaling
// (Figure 2 / Section 2.3).
func BenchmarkE1Eval(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{100, 1000, 10_000} {
		doc := generate.DocumentScale(rng, n)
		for _, m := range []int{4, 16, 64} {
			p := pattern.Random(rand.New(rand.NewSource(int64(m))), pattern.RandomConfig{
				Size: m, Labels: []string{"a", "b", "c", "d"},
				PWildcard: 0.2, PDescendant: 0.3, PBranch: 0.4,
			})
			b.Run(fmt.Sprintf("t=%d/p=%d", n, m), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					match.Eval(p, doc)
				}
			})
		}
	}
}

// benchLinearDetect shares the E3/E4 harness.
func benchLinearDetect(b *testing.B, isInsert bool) {
	for _, size := range []int{4, 16, 64, 128} {
		rng := rand.New(rand.NewSource(int64(size)))
		const pairs = 16
		type inst struct {
			r ops.Read
			u ops.Update
		}
		var insts []inst
		for i := 0; i < pairs; i++ {
			r, up := generate.LinearPair(rng, size)
			if isInsert {
				x := xmltree.Random(rng, xmltree.RandomConfig{Size: 4, Labels: []string{"a", "b", "c"}})
				insts = append(insts, inst{ops.Read{P: r}, ops.Insert{P: up, X: x}})
			} else {
				if up.Output() == up.Root() {
					n := up.AddChild(up.Output(), pattern.Child, "a")
					up.SetOutput(n)
				}
				insts = append(insts, inst{ops.Read{P: r}, ops.Delete{P: up}})
			}
		}
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				in := insts[i%pairs]
				if _, err := core.Detect(in.r, in.u, ops.NodeSemantics, core.SearchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3ReadDelete measures read-delete linear detection (Theorem 1).
func BenchmarkE3ReadDelete(b *testing.B) { benchLinearDetect(b, false) }

// BenchmarkE4ReadInsert measures read-insert linear detection (Theorem 2).
func BenchmarkE4ReadInsert(b *testing.B) { benchLinearDetect(b, true) }

// BenchmarkE5BranchingUpdate measures detection with branching update
// patterns against a linear read (Corollaries 1-2): cost tracks the spine,
// not the predicate count.
func BenchmarkE5BranchingUpdate(b *testing.B) {
	read := pattern.RandomLinear(rand.New(rand.NewSource(3)), 6, []string{"a", "b", "c"}, 0.25, 0.35)
	for _, branches := range []int{0, 4, 16} {
		up := pattern.RandomLinear(rand.New(rand.NewSource(4)), 4, []string{"a", "b", "c"}, 0.25, 0.35)
		spine := up.Spine()
		brng := rand.New(rand.NewSource(int64(branches)))
		for i := 0; i < branches; i++ {
			up.AddChild(spine[brng.Intn(len(spine))], pattern.Child, "a")
		}
		ins := ops.Insert{P: up, X: xmltree.MustParse("<a/>")}
		b.Run(fmt.Sprintf("branches=%d", branches), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ReadInsertLinear(read, ins, ops.NodeSemantics); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6Reparent measures witness minimization (Lemmas 9-11) on
// witnesses inflated to various sizes.
func BenchmarkE6Reparent(b *testing.B) {
	r := xpath.MustParse("//C")
	ins := ops.Insert{P: xpath.MustParse("/*/B"), X: xmltree.MustParse("<C/>")}
	read := ops.Read{P: r}
	v, err := core.ReadInsertLinear(r, ins, ops.NodeSemantics)
	if err != nil || !v.Conflict {
		b.Fatal("setup failed")
	}
	for _, pad := range []int{100, 1000, 10_000} {
		rng := rand.New(rand.NewSource(7))
		big := v.Witness.Clone()
		nodes := big.Nodes()
		for big.Size() < pad {
			n := nodes[rng.Intn(len(nodes))]
			c := big.AddChild(n, "pad")
			for j := 0; j < 30 && big.Size() < pad; j++ {
				c = big.AddChild(c, "pad")
			}
		}
		b.Run(fmt.Sprintf("pad=%d", pad), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ShrinkWitness(big, read, ins); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7HardnessReduction measures the polynomial path of Theorem 4:
// containment check + reduction + constructed witness + verification.
func BenchmarkE7HardnessReduction(b *testing.B) {
	for n := 1; n <= 3; n++ {
		p, q := generate.HardPair(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				contained, counter := containment.Contained(p, q)
				if contained {
					continue
				}
				r, ins := containment.ReduceToReadInsert(p, q)
				w := containment.ReductionWitnessInsert(p, q, counter)
				ok, err := ops.NodeConflictWitness(r, ins, w)
				if err != nil || !ok {
					b.Fatal("witness failed")
				}
			}
		})
	}
}

// BenchmarkE7HardnessSearch measures the exponential path: blind witness
// search on the reduced instances (capped so each iteration is bounded;
// the per-candidate cost and the exploding candidate counts are the
// point).
func BenchmarkE7HardnessSearch(b *testing.B) {
	for n := 1; n <= 2; n++ {
		p, q := generate.HardPair(n)
		r, ins := containment.ReduceToReadInsert(p, q)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SearchConflict(r, ins, ops.NodeSemantics, core.SearchOptions{
					MaxNodes: 8, MaxCandidates: 10_000,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8HardnessDelete is the Theorem 6 counterpart of E7.
func BenchmarkE8HardnessDelete(b *testing.B) {
	for n := 1; n <= 3; n++ {
		p, q := generate.HardPair(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				contained, counter := containment.Contained(p, q)
				if contained {
					continue
				}
				r, del := containment.ReduceToReadDelete(p, q)
				w := containment.ReductionWitnessDelete(p, q, counter)
				ok, err := ops.NodeConflictWitness(r, del, w)
				if err != nil || !ok {
					b.Fatal("witness failed")
				}
			}
		})
	}
}

// BenchmarkE10Matcher ablates the two weak-matching implementations
// (automata product vs direct DP; REMARK after Theorem 1).
func BenchmarkE10Matcher(b *testing.B) {
	for _, size := range []int{8, 64, 256} {
		rng := rand.New(rand.NewSource(int64(size)))
		l := pattern.RandomLinear(rng, size, []string{"a", "b", "c"}, 0.25, 0.35)
		lp := pattern.RandomLinear(rng, size, []string{"a", "b", "c"}, 0.25, 0.35)
		b.Run(fmt.Sprintf("NFA/size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.MatchWeak(l, lp, "zf"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("DP/size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MatchWeakDP(l, lp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOpsApply measures the raw operation costs of Section 3 on
// inventory documents (supporting the Lemma 1 PTIME claims).
func BenchmarkOpsApply(b *testing.B) {
	for _, books := range []int{100, 1000} {
		inv := generate.Inventory(rand.New(rand.NewSource(5)), books, 0.3)
		ins := ops.Insert{P: xpath.MustParse("//book[.//low]"), X: xmltree.MustParse("<restock/>")}
		del := ops.Delete{P: xpath.MustParse("//book[.//low]")}
		read := ops.Read{P: xpath.MustParse("//book/quantity")}
		b.Run(fmt.Sprintf("read/books=%d", books), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				read.Eval(inv)
			}
		})
		b.Run(fmt.Sprintf("insert/books=%d", books), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ops.ApplyCopy(ins, inv); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("delete/books=%d", books), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ops.ApplyCopy(del, inv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWitnessCheck measures the Lemma 1 witness checkers across the
// three semantics.
func BenchmarkWitnessCheck(b *testing.B) {
	inv := generate.Inventory(rand.New(rand.NewSource(6)), 200, 0.3)
	read := ops.Read{P: xpath.MustParse("//book/*")}
	ins := ops.Insert{P: xpath.MustParse("//book[.//low]"), X: xmltree.MustParse("<restock/>")}
	for _, sem := range []ops.Semantics{ops.NodeSemantics, ops.TreeSemantics, ops.ValueSemantics} {
		b.Run(sem.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ops.ConflictWitness(sem, read, ins, inv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE14SinglePass ablates the per-edge reference detector against
// the single-pass DP detector (REMARK after Theorem 1). The regimes
// differ: on a conflict both may stop early (and the single pass still
// pays its full O(|R|·|D|) table), while refuting a conflict forces the
// per-edge detector through one automata product per read edge — the
// regime the single pass is built for.
func BenchmarkE14SinglePass(b *testing.B) {
	for _, size := range []int{16, 128} {
		rng := rand.New(rand.NewSource(int64(size)))
		r, up := generate.LinearPair(rng, size)
		if up.Output() == up.Root() {
			n := up.AddChild(up.Output(), pattern.Child, "a")
			up.SetOutput(n)
		}
		// A conflict-free variant: the read goes through an alien label
		// first, so no deletion point can ever sit on its path.
		rFree := pattern.New("zalien")
		rFree.Attach(rFree.Root(), pattern.Child, r)
		rFree.SetOutput(rFree.Nodes()[rFree.Size()-1])
		for _, reg := range []struct {
			name string
			read *pattern.Pattern
		}{{"mixed", r}, {"conflict-free", rFree}} {
			d := ops.Delete{P: up}
			b.Run(fmt.Sprintf("per-edge/%s/size=%d", reg.name, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.ReadDeleteLinear(reg.read, d, ops.NodeSemantics); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("single-pass/%s/size=%d", reg.name, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.ReadDeleteLinearFast(reg.read, d, ops.NodeSemantics); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE15Evaluators ablates the reference evaluator against the
// compiled bitset engine.
func BenchmarkE15Evaluators(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	doc := generate.DocumentScale(rng, 10_000)
	p := pattern.Random(rand.New(rand.NewSource(3)), pattern.RandomConfig{
		Size: 16, Labels: []string{"a", "b", "c", "d"},
		PWildcard: 0.2, PDescendant: 0.3, PBranch: 0.4,
	})
	ev := match.Compile(p)
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			match.Eval(p, doc)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev.Eval(doc)
		}
	})
}

// BenchmarkE13Schema measures the schema substrate: validation, valid-tree
// enumeration, and schema-aware detection with static pruning.
func BenchmarkE13Schema(b *testing.B) {
	s := schema.MustParse(`
root inventory
inventory: book*
book: title quantity publisher?
quantity: low?
title:
publisher: name
name:
low:
`)
	inv := generate.Inventory(rand.New(rand.NewSource(4)), 500, 0.3)
	b.Run("validate/books=500", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := s.Validate(inv); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enumerate-valid/max=9", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			s.EnumerateValid(9, func(*xmltree.Tree) bool { n++; return true })
		}
	})
	read := ops.Read{P: xpath.MustParse("//book/low")}
	d := ops.Delete{P: xpath.MustParse("//book")}
	b.Run("detect-static-prune", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := schema.DetectUnderSchema(read, d, ops.NodeSemantics, s, core.SearchOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkUpdateUpdate measures the Section 6 update/update decision
// procedure on its static fast paths and a search-decided pair.
func BenchmarkUpdateUpdate(b *testing.B) {
	ident1 := ops.Insert{P: xpath.MustParse("/a/b"), X: xmltree.MustParse("<x><y/></x>")}
	ident2 := ops.Insert{P: xpath.MustParse("/a/b"), X: xmltree.MustParse("<x><y/></x>")}
	b.Run("identical-static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.UpdateUpdateConflict(ident1, ident2, core.SearchOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	ins := ops.Insert{P: xpath.MustParse("/r/a"), X: xmltree.MustParse("<x/>")}
	del := ops.Delete{P: xpath.MustParse("/r/a/x")}
	b.Run("conflicting-search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.UpdateUpdateConflict(ins, del, core.SearchOptions{MaxNodes: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRevalidation compares incremental revalidation after an update
// (the cited EDBT'04 substrate) against full document revalidation.
func BenchmarkRevalidation(b *testing.B) {
	s := schema.MustParse(`
root inventory
inventory: book*
book: title quantity publisher? restock*
quantity: low?
title:
publisher: name
name:
low:
restock:
`)
	for _, books := range []int{200, 2000} {
		inv := generate.Inventory(rand.New(rand.NewSource(9)), books, 0.3)
		ins := ops.Insert{P: xpath.MustParse("//book[.//low]"), X: xmltree.MustParse("<restock/>")}
		// The comparison isolates the revalidation step itself: the update
		// is applied once, outside the timed loops (in practice the input
		// is already known valid — that is the incremental premise).
		after, err := ops.ApplyCopy(ins, inv)
		if err != nil {
			b.Fatal(err)
		}
		points := ops.Read{P: ins.P}.Eval(after) // points carry over by ID
		b.Run(fmt.Sprintf("incremental/books=%d", books), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := s.RevalidateInsert(after, ins, points); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("full/books=%d", books), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := s.Validate(after); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE18TelemetryOverhead is the testing.B anchor for experiment
// E18: the cost of the observability layer on the bounded-search and
// linear decision procedures, with telemetry channels detached ("off",
// one nil check per event site), with a stats registry attached, and
// with the full channel set (stats + JSON tracer + throttled progress).
func BenchmarkE18TelemetryOverhead(b *testing.B) {
	searchRead := ops.Read{P: xpath.MustParse("a[b][c]/d")}
	searchDel := ops.Delete{P: xpath.MustParse("z/w")}
	rng := rand.New(rand.NewSource(1))
	linRead, linUpd := generate.LinearPair(rng, 24)
	if linUpd.Output() == linUpd.Root() {
		n := linUpd.AddChild(linUpd.Output(), pattern.Child, "a")
		linUpd.SetOutput(n)
	}
	modes := []struct {
		name string
		with func(core.SearchOptions) core.SearchOptions
	}{
		{"off", func(o core.SearchOptions) core.SearchOptions { return o }},
		{"stats", func(o core.SearchOptions) core.SearchOptions {
			return o.WithStats(telemetry.New())
		}},
		{"full", func(o core.SearchOptions) core.SearchOptions {
			return o.WithStats(telemetry.New()).
				WithTracer(telemetry.NewJSONTracer(io.Discard)).
				WithProgress(telemetry.NewProgress(func(telemetry.Update) {}, time.Hour))
		}},
	}
	for _, m := range modes {
		opts := m.with(core.SearchOptions{MaxNodes: 6, MaxCandidates: 10_000})
		b.Run("search/"+m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Detect(searchRead, searchDel, ops.NodeSemantics, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		lopts := m.with(core.SearchOptions{})
		b.Run("linear/"+m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Detect(ops.Read{P: linRead}, ops.Delete{P: linUpd}, ops.NodeSemantics, lopts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSearch compares the sequential and worker-pool witness
// searches on a branching-read refutation workload. The speedup tracks
// GOMAXPROCS (per-candidate checks dominate and parallelize); on a
// single-core machine the two are necessarily equal.
func BenchmarkParallelSearch(b *testing.B) {
	r := ops.Read{P: xpath.MustParse("a[b][c]/d")}
	d := ops.Delete{P: xpath.MustParse("z/w")}
	opts := core.SearchOptions{MaxNodes: 5, MaxCandidates: 100_000}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SearchConflict(r, d, ops.NodeSemantics, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SearchConflictParallel(r, d, ops.NodeSemantics, opts, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE19BatchAnalysis is the testing.B anchor for experiment E19:
// the pairwise dependence analysis of a 36-statement program with
// repeated patterns, sequentially, and fanned out over a worker pool
// sharing a warm verdict cache. Verdicts are identical in every mode;
// only the time changes.
func BenchmarkE19BatchAnalysis(b *testing.B) {
	var src strings.Builder
	src.WriteString("x = doc <r><a><q/><b/></a></r>\ny = doc <r><a/></r>\n")
	reads := []string{"/a[q]/b", "/a[c][d]/b", "//b", "/a[q]/q", "/a[b][q]/c"}
	upds := []string{"insert $x/a, <b/>", "delete $x/a/b", "insert $x/a, <q/>", "delete $x//q"}
	for i := 0; i < 17; i++ {
		fmt.Fprintf(&src, "r%d = read $x%s\n%s\n", i, reads[i%len(reads)], upds[i%len(upds)])
	}
	prog := program.MustParse(src.String())
	opts := core.SearchOptions{MaxNodes: 5, MaxCandidates: 20_000}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := program.Analyze(prog, program.Options{Search: opts}); err != nil {
				b.Fatal(err)
			}
		}
	})
	cache := core.NewDetectorCache(0)
	b.Run("parallel-warm-cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			popt := program.Options{Search: opts, Workers: runtime.GOMAXPROCS(0), Cache: cache}
			if _, err := program.Analyze(prog, popt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
