package xmlconflict

// The durable document store facade: a write-ahead-logged, snapshotting
// store of named XML trees whose READ/INSERT/DELETE submissions are
// admitted through the conflict detector (optimistic
// commute-or-conflict scheduling per document). See internal/store for
// the full durability and recovery contract.

import (
	"strings"

	"xmlconflict/internal/store"
	"xmlconflict/internal/xmltree"
)

// DocStore is a durable, conflict-scheduled store of named XML
// documents. Safe for concurrent use.
type DocStore = store.Store

// StoreOptions configures OpenStore; the zero value fsyncs on every
// commit and snapshots only on demand.
type StoreOptions = store.Options

// StoreOp is one submitted operation: Kind "read", "insert", or
// "delete", an XPath Pattern, an optional fragment X, the admission
// Semantics for reads, and the optimistic BaseLSN (0 = current state).
type StoreOp = store.Op

// StoreResult reports a committed or evaluated operation: the
// document's LSN and AHU digest afterwards, insertion/deletion point
// count, and (for reads) the matched subtrees' canonical XML.
type StoreResult = store.Result

// DocInfo describes a stored document.
type DocInfo = store.Info

// StoreConflictError is the machine-readable admission rejection: the
// committed update the operation collided with and which conflict
// semantics (node/tree/value) fired.
type StoreConflictError = store.ConflictError

// FsyncPolicy selects when a store commit becomes durable.
type FsyncPolicy = store.FsyncPolicy

const (
	// FsyncAlways fsyncs before every commit acknowledgment.
	FsyncAlways = store.FsyncAlways
	// FsyncGroup acknowledges after the next group fsync.
	FsyncGroup = store.FsyncGroup
	// FsyncNever leaves durability to the OS page cache.
	FsyncNever = store.FsyncNever
)

// Store admission sentinels, matchable with errors.Is.
var (
	// ErrDocNotFound: the named document is not in the store.
	ErrDocNotFound = store.ErrNotFound
	// ErrDocExists: Create on an already-registered id.
	ErrDocExists = store.ErrExists
	// ErrStaleBase: the BaseLSN predates the admission window.
	ErrStaleBase = store.ErrStaleBase
	// ErrFutureBase: the BaseLSN is beyond the store's LSN.
	ErrFutureBase = store.ErrFutureBase
	// ErrStoreClosed: the store has been closed (or fail-stopped).
	ErrStoreClosed = store.ErrClosed
)

// OpenStore loads (or initializes) a durable document store rooted at
// dir, recovering from its snapshots and write-ahead log.
func OpenStore(dir string, opts StoreOptions) (*DocStore, error) {
	return store.Open(dir, opts)
}

// ParseLimits bounds XML parsing: maximum element depth, node count,
// and input bytes. The zero value is unbounded; ParseXML/ParseXMLString
// apply DefaultParseLimits.
type ParseLimits = xmltree.ParseLimits

// ParseLimitError is the typed rejection of input past a ParseLimits
// bound; its Limit field names the dimension ("depth", "nodes",
// "bytes").
type ParseLimitError = xmltree.LimitError

// DefaultParseLimits are the bounds Parse applies when none are given:
// generous for documents, fatal for billion-laughs-style bombs.
func DefaultParseLimits() ParseLimits { return xmltree.DefaultParseLimits() }

// ParseXMLLimited parses with explicit limits instead of the defaults.
func ParseXMLLimited(s string, lim ParseLimits) (*Tree, error) {
	return xmltree.ParseWithLimits(strings.NewReader(s), lim)
}
