package xmlconflict_test

import (
	"testing"

	"xmlconflict"
)

// TestTutorialClaims executes every factual claim made in
// docs/TUTORIAL.md, in order, so the tutorial cannot rot.
func TestTutorialClaims(t *testing.T) {
	// §1: the Section 1 example and its flip.
	read := xmlconflict.Read{P: xmlconflict.MustParseXPath("//C")}
	ins := xmlconflict.Insert{
		P: xmlconflict.MustParseXPath("/*/B"),
		X: xmlconflict.MustParseXML("<C/>"),
	}
	v, err := xmlconflict.Detect(read, ins, xmlconflict.NodeSemantics, xmlconflict.SearchOptions{})
	if err != nil || !v.Conflict || v.Witness == nil {
		t.Fatalf("§1 conflict: %+v %v", v, err)
	}
	v, err = xmlconflict.Detect(xmlconflict.Read{P: xmlconflict.MustParseXPath("//D")}, ins,
		xmlconflict.NodeSemantics, xmlconflict.SearchOptions{})
	if err != nil || v.Conflict {
		t.Fatalf("§1 //D: %+v %v", v, err)
	}

	// §2: attributes/text discarded.
	tr, err := xmlconflict.ParseXMLString(`<inv n="5">text<book/><book/></inv>`)
	if err != nil || tr.Size() != 3 {
		t.Fatalf("§2 size: %d %v", tr.Size(), err)
	}

	// §3: Figure 2 evaluates to the b node; linearity.
	p := xmlconflict.MustParseXPath("a[.//c]/b[d][*//f]")
	fig2 := xmlconflict.MustParseXML("<a><b><d/><e><f/></e></b><c/></a>")
	res := xmlconflict.Eval(p, fig2)
	if len(res) != 1 || res[0].Label() != "b" {
		t.Fatalf("§3 Figure 2: %v", res)
	}
	if p.IsLinear() || !xmlconflict.MustParseXPath("/a//b/*").IsLinear() {
		t.Fatalf("§3 linearity")
	}

	// §5: the read-delete example with Edge, Word, Witness.
	v, err = xmlconflict.ReadDeleteConflict(
		xmlconflict.MustParseXPath("/a/b//c"),
		xmlconflict.Delete{P: xmlconflict.MustParseXPath("/a/b")},
		xmlconflict.NodeSemantics)
	if err != nil {
		t.Fatal(err)
	}
	if v.Edge != 1 || len(v.Word) != 2 || v.Word[0] != "a" || v.Word[1] != "b" {
		t.Fatalf("§5 edge/word: %+v", v)
	}
	if v.Witness.XML() != "<a><b><c/></b></a>" {
		t.Fatalf("§5 witness: %s", v.Witness.XML())
	}

	// §6: the reduction walkthrough.
	pp := xmlconflict.MustParseXPath("a[.//b1][.//b2]")
	qq := xmlconflict.MustParseXPath("a[.//b1/b2]")
	contained, counter := xmlconflict.Contained(pp, qq)
	if contained || counter == nil {
		t.Fatalf("§6 containment")
	}
	r, rIns := xmlconflict.ReduceNonContainmentToInsert(pp, qq)
	w := xmlconflict.ReductionWitnessInsert(pp, qq, counter)
	ok, err := xmlconflict.IsConflictWitness(xmlconflict.NodeSemantics, r, rIns, w)
	if err != nil || !ok {
		t.Fatalf("§6 witness: %v %v", ok, err)
	}

	// §7: observing a detection. The quickstart pair under a recorder
	// traces the linear method choice, per-edge cut decisions, and the
	// verdict; stats count the automata products behind them.
	st := xmlconflict.NewStats()
	rec := xmlconflict.NewTraceRecorder()
	v, err = xmlconflict.Detect(read, ins, xmlconflict.NodeSemantics,
		xmlconflict.SearchOptions{}.WithStats(st).WithTracer(rec))
	if err != nil || !v.Conflict {
		t.Fatalf("§7 detect: %+v %v", v, err)
	}
	if m, ok := rec.First("detect.method"); !ok || m.Field("method") != "linear" {
		t.Fatalf("§7 detect.method: %v", rec.Names())
	}
	if _, ok := rec.First("linear.edge"); !ok {
		t.Fatalf("§7 no linear.edge event: %v", rec.Names())
	}
	if vd, ok := rec.First("detect.verdict"); !ok || vd.Field("conflict") != true {
		t.Fatalf("§7 detect.verdict: %v", rec.Names())
	}
	snap := st.Snapshot()
	if snap.Counter("automata.products") == 0 || snap.Counter("automata.product_states") == 0 {
		t.Fatalf("§7 automata counters: %s", snap)
	}
	// A branching read goes through the search and reports candidates.
	v, err = xmlconflict.Detect(
		xmlconflict.Read{P: xmlconflict.MustParseXPath("a[q]/b")},
		xmlconflict.Insert{P: xmlconflict.MustParseXPath("a"), X: xmlconflict.MustParseXML("<b/>")},
		xmlconflict.NodeSemantics,
		xmlconflict.SearchOptions{MaxNodes: 4}.WithTracer(rec))
	if err != nil || !v.Conflict || v.Candidates == 0 {
		t.Fatalf("§7 search candidates: %+v %v", v, err)
	}
	if _, ok := rec.First("search.start"); !ok {
		t.Fatalf("§7 no search.start event: %v", rec.Names())
	}

	// §8: the xdep walkthrough program parses and optimizes with a CSE.
	prog, err := xmlconflict.ParseProgram(`
x = doc <x><B/><A/></x>
y = read $x/*/A
insert $x/B, <C/>
u = read $x/*/A
`)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := xmlconflict.OptimizeProgram(prog, xmlconflict.AnalyzeOptions{Sem: xmlconflict.NodeSemantics})
	if err != nil {
		t.Fatal(err)
	}
	cse := false
	for _, a := range opt.Applied {
		if a.Kind == "cse" {
			cse = true
		}
	}
	if !cse {
		t.Fatalf("§8 CSE missing: %+v", opt.Applied)
	}
	a, err := xmlconflict.AnalyzeProgram(prog, xmlconflict.AnalyzeOptions{Sem: xmlconflict.NodeSemantics})
	if err != nil {
		t.Fatal(err)
	}
	if a.ParallelSchedule().Depth() != 2 {
		t.Fatalf("§8 schedule depth: %d", a.ParallelSchedule().Depth())
	}

	// §9: minimization example.
	if m := xmlconflict.MinimizePattern(xmlconflict.MustParseXPath("/a[b/c][b][.//b]/d")); m.String() != "/a[b[c]]/d" {
		t.Fatalf("§9 minimize: %s", m)
	}
}
