package xmlconflict_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"xmlconflict"
)

// TestFacadeEndToEnd exercises every entry point of the public API once,
// as a downstream user would.
func TestFacadeEndToEnd(t *testing.T) {
	// Parsing.
	p, err := xmlconflict.ParseXPath("//book[.//low]")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xmlconflict.ParseXPath("]["); err == nil {
		t.Fatal("bad xpath accepted")
	}
	doc, err := xmlconflict.ParseXMLString("<inventory><book><quantity><low/></quantity></book></inventory>")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xmlconflict.ParseXML(strings.NewReader("<a><b/></a>")); err != nil {
		t.Fatal(err)
	}
	if _, err := xmlconflict.ParseXMLString("<unclosed>"); err == nil {
		t.Fatal("bad xml accepted")
	}

	// Evaluation.
	res := xmlconflict.Eval(p, doc)
	if len(res) != 1 || res[0].Label() != "book" {
		t.Fatalf("Eval = %v", res)
	}
	if !xmlconflict.Embeds(p, doc) {
		t.Fatal("Embeds false")
	}

	// Tree construction and isomorphism.
	tr := xmlconflict.NewTree("a")
	tr.AddChild(tr.Root(), "b")
	if !xmlconflict.Isomorphic(tr, xmlconflict.MustParseXML("<a><b/></a>")) {
		t.Fatal("Isomorphic false")
	}

	// Conflict detection, all entry points.
	read := xmlconflict.Read{P: xmlconflict.MustParseXPath("//C")}
	ins := xmlconflict.Insert{P: xmlconflict.MustParseXPath("/*/B"), X: xmlconflict.MustParseXML("<C/>")}
	del := xmlconflict.Delete{P: xmlconflict.MustParseXPath("/a/b")}

	v, err := xmlconflict.Detect(read, ins, xmlconflict.NodeSemantics, xmlconflict.SearchOptions{})
	if err != nil || !v.Conflict {
		t.Fatalf("Detect: %+v %v", v, err)
	}
	ok, err := xmlconflict.IsConflictWitness(xmlconflict.NodeSemantics, read, ins, v.Witness)
	if err != nil || !ok {
		t.Fatalf("IsConflictWitness: %v %v", ok, err)
	}
	small, err := xmlconflict.ShrinkWitness(v.Witness, read, ins)
	if err != nil || small.Size() > v.Witness.Size() {
		t.Fatalf("ShrinkWitness: %v", err)
	}
	if v2, err := xmlconflict.ReadInsertConflict(read.P, ins, xmlconflict.TreeSemantics); err != nil || !v2.Conflict {
		t.Fatalf("ReadInsertConflict: %v", err)
	}
	if v2, err := xmlconflict.ReadInsertConflictFast(read.P, ins, xmlconflict.NodeSemantics); err != nil || !v2.Conflict {
		t.Fatalf("ReadInsertConflictFast: %v", err)
	}
	rd := xmlconflict.MustParseXPath("/a/b/c")
	if v2, err := xmlconflict.ReadDeleteConflict(rd, del, xmlconflict.ValueSemantics); err != nil || !v2.Conflict {
		t.Fatalf("ReadDeleteConflict: %v", err)
	}
	if v2, err := xmlconflict.ReadDeleteConflictFast(rd, del, xmlconflict.NodeSemantics); err != nil || !v2.Conflict {
		t.Fatalf("ReadDeleteConflictFast: %v", err)
	}

	// Update/update conflicts.
	if v2, err := xmlconflict.UpdateUpdateConflict(ins, ins, xmlconflict.SearchOptions{}); err != nil || v2.Conflict {
		t.Fatalf("identical updates: %+v %v", v2, err)
	}
	if ok, _, err := xmlconflict.UpdatesIndependent(
		xmlconflict.Insert{P: xmlconflict.MustParseXPath("/r/a"), X: xmlconflict.MustParseXML("<x/>")},
		xmlconflict.Insert{P: xmlconflict.MustParseXPath("/r/b"), X: xmlconflict.MustParseXML("<y/>")},
		xmlconflict.SearchOptions{}); err != nil || !ok {
		t.Fatalf("UpdatesIndependent: %v %v", ok, err)
	}

	// Containment, equivalence, minimization, reductions.
	pa, pb := xmlconflict.MustParseXPath("/a/b"), xmlconflict.MustParseXPath("//b")
	if ok, _ := xmlconflict.Contained(pa, pb); !ok {
		t.Fatal("Contained false")
	}
	if xmlconflict.EquivalentPatterns(pa, pb) {
		t.Fatal("EquivalentPatterns true")
	}
	if m := xmlconflict.MinimizePattern(xmlconflict.MustParseXPath("/a[b][b]")); m.Size() != 2 {
		t.Fatalf("MinimizePattern: %s", m)
	}
	notC, counter := xmlconflict.Contained(pb, pa)
	if notC {
		t.Fatal("//b ⊆ /a/b?")
	}
	rri, ii := xmlconflict.ReduceNonContainmentToInsert(pb, pa)
	w := xmlconflict.ReductionWitnessInsert(pb, pa, counter)
	if ok, err := xmlconflict.IsConflictWitness(xmlconflict.NodeSemantics, rri, ii, w); err != nil || !ok {
		t.Fatalf("reduction witness insert: %v %v", ok, err)
	}
	rrd, dd := xmlconflict.ReduceNonContainmentToDelete(pb, pa)
	wd := xmlconflict.ReductionWitnessDelete(pb, pa, counter)
	if ok, err := xmlconflict.IsConflictWitness(xmlconflict.NodeSemantics, rrd, dd, wd); err != nil || !ok {
		t.Fatalf("reduction witness delete: %v %v", ok, err)
	}

	// Schemas.
	s, err := xmlconflict.ParseSchema("root a\na: b?\nb:")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(xmlconflict.MustParseXML("<a><b/></a>")); err != nil {
		t.Fatal(err)
	}
	s2 := xmlconflict.MustParseSchema("root inventory\ninventory: book*\nbook: quantity\nquantity: low?\nlow:")
	vs, err := xmlconflict.DetectUnderSchema(
		xmlconflict.Read{P: xmlconflict.MustParseXPath("//low")},
		xmlconflict.Insert{P: xmlconflict.MustParseXPath("/inventory/low"), X: xmlconflict.MustParseXML("<low/>")},
		xmlconflict.NodeSemantics, s2, xmlconflict.SearchOptions{})
	if err != nil || vs.Conflict {
		t.Fatalf("DetectUnderSchema: %+v %v", vs, err)
	}

	// Programs.
	prog, err := xmlconflict.ParseProgram("x = doc <x><B/><A/></x>\ny = read $x//A\ninsert $x/B, <C/>\nz = read $x//A")
	if err != nil {
		t.Fatal(err)
	}
	a, err := xmlconflict.AnalyzeProgram(prog, xmlconflict.AnalyzeOptions{Sem: xmlconflict.NodeSemantics})
	if err != nil {
		t.Fatal(err)
	}
	if a.Dep[1][2] {
		t.Fatal("//A should not depend on inserting <C/>")
	}
	opt, err := xmlconflict.OptimizeProgram(prog, xmlconflict.AnalyzeOptions{Sem: xmlconflict.NodeSemantics})
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Applied) == 0 {
		t.Fatal("optimizer found nothing (expected CSE of the repeated //A)")
	}
}

func TestFacadeConstantsAndAliases(t *testing.T) {
	// The axis/semantics constants are usable and distinct.
	if xmlconflict.Child == xmlconflict.Descendant {
		t.Fatal("axes equal")
	}
	if xmlconflict.NodeSemantics == xmlconflict.TreeSemantics ||
		xmlconflict.TreeSemantics == xmlconflict.ValueSemantics {
		t.Fatal("semantics equal")
	}
	if xmlconflict.Wildcard != "*" {
		t.Fatal("wildcard constant wrong")
	}
	// Pattern construction via the facade aliases.
	p := xmlconflict.MustParseXPath("/a")
	n := p.AddChild(p.Root(), xmlconflict.Descendant, xmlconflict.Wildcard)
	p.SetOutput(n)
	if !p.IsLinear() || p.String() != "/a//*" {
		t.Fatalf("pattern building through the facade: %s", p)
	}
}

// TestObservabilityFacade exercises the telemetry surface end to end:
// stats, JSON and text tracers, progress reporting, the parallel
// searcher's deterministic witness, and observed shrinking.
func TestObservabilityFacade(t *testing.T) {
	read := xmlconflict.Read{P: xmlconflict.MustParseXPath("a[q]/b")}
	ins := xmlconflict.Insert{
		P: xmlconflict.MustParseXPath("a"),
		X: xmlconflict.MustParseXML("<b/>"),
	}

	var jsonBuf, textBuf, progBuf bytes.Buffer
	st := xmlconflict.NewStats()
	var updates []xmlconflict.ProgressUpdate
	opts := xmlconflict.SearchOptions{MaxNodes: 4}.
		WithStats(st).
		WithTracer(xmlconflict.NewJSONTracer(&jsonBuf)).
		WithProgress(xmlconflict.NewProgress(func(u xmlconflict.ProgressUpdate) { updates = append(updates, u) }, 0))

	v, err := xmlconflict.Detect(read, ins, xmlconflict.NodeSemantics, opts)
	if err != nil || !v.Conflict || v.Candidates == 0 {
		t.Fatalf("detect: %+v %v", v, err)
	}
	for _, line := range strings.Split(strings.TrimSpace(jsonBuf.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line not JSON: %q: %v", line, err)
		}
	}
	if snap := st.Snapshot(); snap.Counter("search.candidates") != int64(v.Candidates) {
		t.Fatalf("stats/verdict disagree: %d vs %d", snap.Counter("search.candidates"), v.Candidates)
	}
	if len(updates) == 0 || !updates[len(updates)-1].Final {
		t.Fatalf("progress updates: %+v", updates)
	}

	// Text tracer and progress writer render one line per event/report.
	textOpts := xmlconflict.SearchOptions{MaxNodes: 4}.
		WithTracer(xmlconflict.NewTextTracer(&textBuf)).
		WithProgress(xmlconflict.NewProgressWriter(&progBuf, 0))
	if _, err := xmlconflict.Detect(read, ins, xmlconflict.NodeSemantics, textOpts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(textBuf.String(), "search.start") || !strings.Contains(progBuf.String(), "search:") {
		t.Fatalf("text outputs missing:\n%s\n%s", textBuf.String(), progBuf.String())
	}

	// DetectParallel returns the canonical (sequential) witness.
	seq, err := xmlconflict.Detect(read, ins, xmlconflict.NodeSemantics, xmlconflict.SearchOptions{MaxNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	par, err := xmlconflict.DetectParallel(read, ins, xmlconflict.NodeSemantics, xmlconflict.SearchOptions{MaxNodes: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Conflict || !xmlconflict.Isomorphic(seq.Witness, par.Witness) {
		t.Fatalf("parallel witness not canonical: seq %s par %s", seq.Witness, par.Witness)
	}

	// Observed shrinking reports through the same channels.
	lread := xmlconflict.Read{P: xmlconflict.MustParseXPath("//C")}
	lins := xmlconflict.Insert{P: xmlconflict.MustParseXPath("/*/B"), X: xmlconflict.MustParseXML("<C/>")}
	lv, err := xmlconflict.Detect(lread, lins, xmlconflict.NodeSemantics, xmlconflict.SearchOptions{})
	if err != nil || !lv.Conflict {
		t.Fatalf("linear detect: %+v %v", lv, err)
	}
	sst := xmlconflict.NewStats()
	if _, err := xmlconflict.ShrinkWitnessObserved(lv.Witness, lread, lins,
		xmlconflict.SearchOptions{}.WithStats(sst)); err != nil {
		t.Fatal(err)
	}
	if sst.Snapshot().Counter("shrink.calls") != 1 {
		t.Fatalf("shrink not counted: %s", sst.Snapshot())
	}
}
