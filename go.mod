module xmlconflict

go 1.22
